#!/usr/bin/env python3
"""Self-test for tools/tracectl.py and tools/bench_report.py (ctest
`tracectl-selftest`).

Pins the trace-analysis CLI:

  * `validate` accepts a schema-conformant v1, v2, and v3 artifact
    (including flight-recorder dump artifacts) and version-gates the v3
    `ts:`/`flight:` families out of older artifacts;
  * `validate` reports (never crashes on) malformed, truncated, float-
    bearing, out-of-order, and non-object lines, with file:line errors;
  * `detect` flags a seeded spurious-loss storm / retransmit storm /
    handshake stall / cwnd collapse / queue buildup, distinguishes a
    genuine rtx storm from one explained by spurious-loss recovery, and
    stays silent on a clean trace;
  * `timeline` renders per-flow series from `ts:` samples with pinned
    Mbps and Jain's-index arithmetic, in ASCII and CSV;
  * `diff` reports per-event-class deltas and exits 0 on identical dirs;
  * bench_report `det` output is canonical (byte-equal for equal
    deterministic sections) and `check` gates on it;
  * bench_report `perf-floor` hard-gates exact work counters and
    allocation ceilings, warns (never fails) on events/sec, and guards
    against rounds miscalibration and missing results.

Usage: test_tracectl.py   (exit 0 pass, 1 fail)
"""

import io
import json
import os
import sys
import tempfile
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import bench_report  # noqa: E402
import tracectl  # noqa: E402

failures = []


def check(cond, message):
    if not cond:
        failures.append(message)


def run(module, argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        try:
            code = module.main(argv)
        except SystemExit as e:  # argparse errors
            code = e.code
    return code, out.getvalue(), err.getvalue()


def write_trace(path, lines):
    with open(path, "w", encoding="utf-8") as f:
        for line in lines:
            f.write(line if isinstance(line, str) else json.dumps(line))
            f.write("\n")


def clean_trace_lines(version=2):
    start = {"t": 0, "ev": "run:start", "proto": "quic", "scenario": "clean",
             "seed": 1, "objects": 1, "object_bytes": 1024}
    if version >= 2:
        start = {"t": 0, "ev": "run:start", "v": version, **{
            k: v for k, v in start.items() if k not in ("t", "ev")}}
    lines = [
        start,
        {"t": 0, "ev": "quic:handshake", "side": "client",
         "msg": "full_chlo"},
        {"t": 36000000, "ev": "quic:established", "side": "client",
         "rtts": 1},
        {"t": 36000000, "ev": "cc:state", "side": "server", "from": "Init",
         "to": "SlowStart"},
        {"t": 36000000, "ev": "cc:cwnd", "side": "server", "cwnd": 43200},
        {"t": 40000000, "ev": "quic:packet_sent", "side": "server", "pn": 1,
         "bytes": 1392, "rtxable": True},
        {"t": 76000000, "ev": "quic:ack_processed", "side": "server",
         "largest": 1, "acked": 1, "lost": 0, "spurious": 0,
         "rtt_ns": 36000000},
        {"t": 80000000, "ev": "cc:cwnd", "side": "server", "cwnd": 57600},
        {"t": 90000000, "ev": "quic:stream_fin", "side": "client", "sid": 3,
         "bytes": 1024},
        {"t": 90000000, "ev": "run:summary", "plt_ns": 90000000},
    ]
    if version >= 2:
        lines.append({"t": 90000000, "ev": "run:hist", "key": "quic.plt_us",
                      "count": 1, "sum": 90000, "min": 90000, "max": 90000,
                      "p50": 90000, "p90": 90000, "p99": 90000,
                      "buckets": "[[218,1]]"})
    lines.append({"t": 90000000, "ev": "run:metrics", "quic.runs": 1})
    return lines


def storm_trace_lines():
    """A clean skeleton plus a burst of spurious losses inside one second."""
    lines = clean_trace_lines()[:-1]  # keep run:metrics for the end
    t = 100000000
    for pn in range(10):
        lines.append({"t": t, "ev": "quic:spurious_loss", "side": "server",
                      "pn": pn + 10, "bytes": 1392})
        t += 50000000  # 10 spurious declarations across 0.45s
    lines.append({"t": t, "ev": "run:metrics", "quic.runs": 1})
    return lines


def rtx_storm_trace_lines(spurious=1):
    """A clean skeleton plus a one-second retransmission burst: six lost
    QUIC packets and two rtx-flagged TCP segments, with `spurious`
    spurious-loss recoveries riding along. At the default thresholds
    (count 8, window 1s, ratio 0.5) the burst is a retransmit storm when
    spurious < 4 and explained-by-reordering otherwise."""
    lines = clean_trace_lines()[:-1]  # keep run:metrics for the end
    t = 100000000
    for pn in range(6):
        lines.append({"t": t, "ev": "quic:packet_lost", "side": "server",
                      "pn": pn + 20, "bytes": 1392})
        t += 50000000
    for off in (0, 1448):
        lines.append({"t": t, "ev": "tcp:segment_sent", "side": "server",
                      "off": off, "len": 1448, "rtx": True})
        t += 50000000
    for pn in range(spurious):
        lines.append({"t": t, "ev": "quic:spurious_loss", "side": "server",
                      "pn": pn + 40, "bytes": 1392})
        t += 50000000
    lines.append({"t": t, "ev": "run:metrics", "quic.runs": 1})
    return lines


def ts_trace_lines(ticks=10, interval_ns=500_000_000, depth=30000,
                   srtt_base=36_000_000, srtt_bloat=90_000_000):
    """A v3 artifact with periodic `ts:` samples: two flows (TCP delivering
    2x the QUIC flow's rate), one standing downlink queue, one host. The
    depth/srtt knobs parameterize the queue-buildup fixtures."""
    t_end = ticks * interval_ns
    lines = [{"t": 0, "ev": "run:start", "v": 3, "proto": "mixed",
              "scenario": "ts", "seed": 1, "objects": 2,
              "object_bytes": 1 << 20}]
    for i in range(1, ticks + 1):
        t = i * interval_ns
        srtt = srtt_base if i <= 2 else srtt_bloat
        lines.append({"t": t, "ev": "ts:conn", "proto": "quic",
                      "side": "client", "flow": 7, "cwnd": 40000,
                      "ssthresh": 1 << 20, "srtt_ns": srtt,
                      "rttvar_ns": 1_000_000, "inflight": 30000,
                      "pacing_bps": 0, "delivered": i * 62500})
        lines.append({"t": t, "ev": "ts:queue", "dir": "down",
                      "depth": depth, "drops_queue": 0, "drops_random": 0,
                      "delivered": i * 50})
        lines.append({"t": t, "ev": "ts:host", "host": "client",
                      "tx_pkts": i * 10, "tx_bytes": i * 14000,
                      "rx_pkts": i * 10})
        lines.append({"t": t, "ev": "ts:flow", "flow": "QUIC",
                      "cwnd": 40000, "srtt_ns": srtt, "inflight": 30000,
                      "delivered": i * 62500})
        lines.append({"t": t, "ev": "ts:flow", "flow": "TCP",
                      "cwnd": 20000, "srtt_ns": srtt, "inflight": 15000,
                      "delivered": i * 125000})
    lines.append({"t": t_end, "ev": "run:summary", "plt_ns": t_end})
    lines.append({"t": t_end, "ev": "run:metrics", "quic.runs": 1})
    return lines


def flight_dump_lines():
    """A well-formed flight-recorder dump artifact (check-failure flavour,
    with wraparound markers: dropped > 0, first seq > 0)."""
    return [
        {"t": 1000000, "ev": "flight:dump", "v": 3, "label": "quic_client_1",
         "reason": "check", "events": 2, "dropped": 3, "kind": "CHECK",
         "file": "x.cc", "line": 42, "cond": "a <= b"},
        {"t": 1000000, "ev": "flight:event", "seq": 3,
         "line": json.dumps({"t": 1000000, "ev": "quic:packet_sent",
                             "side": "client", "pn": 9, "bytes": 1392,
                             "rtxable": True})},
        {"t": 2000000, "ev": "flight:event", "seq": 4,
         "line": json.dumps({"t": 2000000, "ev": "quic:rto", "side":
                             "client", "n": 1})},
        {"t": 2000000, "ev": "flight:end", "events": 2},
    ]


def test_validate_ok(td):
    for version in (1, 2):
        p = os.path.join(td, f"v{version}.jsonl")
        write_trace(p, clean_trace_lines(version))
        code, out, err = run(tracectl, ["validate", p])
        check(code == 0, f"validate v{version}: expected 0, got {code}: "
              f"{out}{err}")
    # v3: periodic ts: samples and flight-recorder dump artifacts validate.
    p = os.path.join(td, "v3.jsonl")
    write_trace(p, ts_trace_lines())
    code, out, err = run(tracectl, ["validate", p])
    check(code == 0, f"validate v3 ts: expected 0, got {code}: {out}{err}")
    p = os.path.join(td, "flight_ok.jsonl")
    write_trace(p, flight_dump_lines())
    code, out, err = run(tracectl, ["validate", p])
    check(code == 0, f"validate flight: expected 0, got {code}: {out}{err}")


def test_validate_v3_gating(td):
    # A ts: record inside a v2 artifact is a version violation.
    lines = clean_trace_lines(version=2)
    lines.insert(2, {"t": 0, "ev": "ts:queue", "dir": "down", "depth": 0,
                     "drops_queue": 0, "drops_random": 0, "delivered": 0})
    p = os.path.join(td, "ts_in_v2.jsonl")
    write_trace(p, lines)
    code, out, _ = run(tracectl, ["validate", p])
    check(code == 1 and "requires schema v3" in out,
          f"ts in v2: expected version gate, got rc={code}: {out}")
    # Incomplete ts:conn records are caught by the required-field check.
    lines = ts_trace_lines(ticks=1)
    del lines[1]["cwnd"]
    p = os.path.join(td, "ts_missing_field.jsonl")
    write_trace(p, lines)
    code, out, _ = run(tracectl, ["validate", p])
    check(code == 1 and "missing field" in out and "cwnd" in out,
          f"ts missing field: expected failure, got rc={code}: {out}")
    # A dump without its flight:end footer is a truncated artifact.
    p = os.path.join(td, "flight_truncated.jsonl")
    write_trace(p, flight_dump_lines()[:-1])
    code, out, _ = run(tracectl, ["validate", p])
    check(code == 1 and "flight:end" in out,
          f"flight truncated: expected failure, got rc={code}: {out}")
    # An embedded line that is not a t/ev trace record is an error.
    lines = flight_dump_lines()
    lines[1]["line"] = "not json at all"
    p = os.path.join(td, "flight_bad_line.jsonl")
    write_trace(p, lines)
    code, out, _ = run(tracectl, ["validate", p])
    check(code == 1 and "unparseable" in out,
          f"flight bad line: expected failure, got rc={code}: {out}")


def test_validate_rejects(td):
    cases = {
        "malformed.jsonl": ['{"t":0,"ev":"run:start","pro',
                            '{"t":1,"ev":"x:y"}'],
        "not_object.jsonl": ['[1,2,3]'],
        "float_field.jsonl": ['{"t":0,"ev":"run:start","proto":"quic",'
                              '"scenario":"s","seed":1,"objects":1,'
                              '"object_bytes":1,"ratio":0.5}'],
        "time_backwards.jsonl": [
            '{"t":5,"ev":"run:start","proto":"quic","scenario":"s","seed":1,'
            '"objects":1,"object_bytes":1}',
            '{"t":3,"ev":"quic:close","side":"client"}'],
        "missing_fields.jsonl": [
            '{"t":0,"ev":"run:start","proto":"quic","scenario":"s","seed":1,'
            '"objects":1,"object_bytes":1}',
            '{"t":1,"ev":"quic:packet_sent","side":"client"}'],
        "empty.jsonl": [],
        "bad_version.jsonl": [
            '{"t":0,"ev":"run:start","v":99,"proto":"quic","scenario":"s",'
            '"seed":1,"objects":1,"object_bytes":1}'],
        "hist_in_v1.jsonl": [
            '{"t":0,"ev":"run:start","proto":"quic","scenario":"s","seed":1,'
            '"objects":1,"object_bytes":1}',
            '{"t":1,"ev":"run:hist","key":"k","count":1,"sum":1,"min":1,'
            '"max":1,"p50":1,"p90":1,"p99":1,"buckets":"[[0,1]]"}'],
    }
    for name, lines in cases.items():
        p = os.path.join(td, name)
        write_trace(p, lines)
        code, out, err = run(tracectl, ["validate", p])
        check(code == 1, f"{name}: expected exit 1, got {code}: {out}{err}")
        check(name in out, f"{name}: error lines must carry the file name")
    # Truncated mid-line (no trailing newline) must be an error, not a crash.
    p = os.path.join(td, "truncated.jsonl")
    with open(p, "w", encoding="utf-8") as f:
        f.write('{"t":0,"ev":"run:start","proto":"quic","scenario":"s",'
                '"seed":1,"objects":1,"object_bytes":1}\n')
        f.write('{"t":1,"ev":"quic:est')
    code, out, _ = run(tracectl, ["validate", p])
    check(code == 1, f"truncated: expected exit 1, got {code}")
    check("truncated" in out or "malformed" in out,
          f"truncated: expected a truncation/parse error, got: {out}")
    # Binary garbage must produce errors, never an exception.
    p = os.path.join(td, "garbage.jsonl")
    with open(p, "wb") as f:
        f.write(b"\x00\xff\xfe{not json}\n\x80\x81\n")
    code, _, _ = run(tracectl, ["validate", p])
    check(code == 1, f"garbage: expected exit 1, got {code}")


def test_detect(td):
    clean = os.path.join(td, "detect_clean.jsonl")
    write_trace(clean, clean_trace_lines())
    code, out, err = run(tracectl, ["detect", clean])
    check(code == 0, f"detect clean: expected 0, got {code}: {out}{err}")
    check(out == "", f"detect clean: expected silence, got: {out}")

    storm = os.path.join(td, "detect_storm.jsonl")
    write_trace(storm, storm_trace_lines())
    code, out, _ = run(tracectl, ["detect", storm])
    check(code == 1, f"detect storm: expected 1, got {code}")
    check("spurious-loss-storm" in out,
          f"detect storm: expected a spurious-loss-storm finding, got: {out}")

    # Retransmit storm: a sustained rtx burst with almost no spurious
    # recoveries is genuine loss and must fire...
    rtx = os.path.join(td, "detect_rtx_storm.jsonl")
    write_trace(rtx, rtx_storm_trace_lines(spurious=1))
    code, out, _ = run(tracectl, ["detect", rtx])
    check(code == 1 and "retransmit-storm" in out,
          f"detect rtx storm: expected retransmit-storm, got rc={code}: {out}")

    # ...while the same burst with matching spurious-loss recoveries is
    # reordering (the spurious rule's territory) and must stay silent.
    rtx_spur = os.path.join(td, "detect_rtx_spurious.jsonl")
    write_trace(rtx_spur, rtx_storm_trace_lines(spurious=4))
    code, out, _ = run(tracectl, ["detect", rtx_spur])
    check(code == 0 and "retransmit-storm" not in out,
          f"detect rtx+spurious: expected silence, got rc={code}: {out}")

    # The ratio knob flips the verdict on the spurious-heavy trace.
    code, out, _ = run(tracectl, ["detect", "--rtx-spurious-ratio", "1.5",
                                  rtx_spur])
    check(code == 1 and "retransmit-storm" in out,
          f"detect rtx ratio knob: expected a finding, got rc={code}: {out}")

    # Handshake stall: established far too late.
    stall_lines = clean_trace_lines()
    for obj in stall_lines:
        if obj.get("ev") in ("quic:established",):
            obj["t"] = 5_000_000_000
    stall = os.path.join(td, "detect_stall.jsonl")
    write_trace(stall, stall_lines)
    code, out, _ = run(tracectl, ["detect", stall])
    check(code == 1 and "handshake-stall" in out,
          f"detect stall: expected handshake-stall, got rc={code}: {out}")

    # cwnd collapse: peak then a tiny final window.
    collapse_lines = clean_trace_lines()[:-1]
    collapse_lines.append({"t": 95000000, "ev": "cc:cwnd", "side": "server",
                           "cwnd": 400000})
    collapse_lines.append({"t": 96000000, "ev": "cc:cwnd", "side": "server",
                           "cwnd": 2700})
    collapse_lines.append({"t": 97000000, "ev": "run:metrics",
                           "quic.runs": 1})
    collapse = os.path.join(td, "detect_collapse.jsonl")
    write_trace(collapse, collapse_lines)
    code, out, _ = run(tracectl, ["detect", collapse])
    check(code == 1 and "cwnd-collapse" in out,
          f"detect collapse: expected cwnd-collapse, got rc={code}: {out}")


def test_detect_queue_buildup(td):
    # Fire: a 4.5s standing queue (30000 >= 16384 bytes) with srtt riding at
    # 90ms >= 1.5x the 36ms minimum.
    fire = os.path.join(td, "detect_queue_fire.jsonl")
    write_trace(fire, ts_trace_lines())
    code, out, _ = run(tracectl, ["detect", fire])
    check(code == 1 and "queue-buildup" in out,
          f"detect queue fire: expected queue-buildup, got rc={code}: {out}")

    # No fire: same shape but the queue never reaches the depth threshold.
    shallow = os.path.join(td, "detect_queue_shallow.jsonl")
    write_trace(shallow, ts_trace_lines(depth=8000))
    code, out, _ = run(tracectl, ["detect", shallow])
    check(code == 0 and "queue-buildup" not in out,
          f"detect queue shallow: expected silence, got rc={code}: {out}")

    # No fire: deep queue but srtt never inflates (depth alone is not
    # bufferbloat — e.g. a token bucket draining at line rate).
    flat = os.path.join(td, "detect_queue_flat_srtt.jsonl")
    write_trace(flat, ts_trace_lines(srtt_bloat=36_000_000))
    code, out, _ = run(tracectl, ["detect", flat])
    check(code == 0 and "queue-buildup" not in out,
          f"detect queue flat srtt: expected silence, got rc={code}: {out}")

    # No fire: the backlog clears before the sustain threshold.
    short = os.path.join(td, "detect_queue_short.jsonl")
    write_trace(short, ts_trace_lines(ticks=3))
    code, out, _ = run(tracectl, ["detect", short])
    check(code == 0 and "queue-buildup" not in out,
          f"detect queue short: expected silence, got rc={code}: {out}")

    # The srtt-factor knob flips the verdict on the firing fixture
    # (90/36 = 2.5x inflation < 3.0x).
    code, out, _ = run(tracectl, ["detect", "--bloat-srtt-factor", "3.0",
                                  fire])
    check(code == 0 and "queue-buildup" not in out,
          f"detect queue knob: expected silence at 3.0x, got rc={code}: "
          f"{out}")


def test_timeline(td):
    p = os.path.join(td, "timeline.jsonl")
    write_trace(p, ts_trace_lines())
    # Pinned arithmetic: QUIC delivers 62500 bytes per 0.5s interval
    # (1.00 Mbps), TCP 125000 (2.00 Mbps); Jain of (1, 2) = 9/10 = 0.900.
    code, out, _ = run(tracectl, ["timeline", p])
    check(code == 0, f"timeline: expected 0, got {code}: {out}")
    check("QUIC" in out and "TCP" in out,
          f"timeline: missing flow columns: {out}")
    row = next((ln for ln in out.splitlines() if ln.strip().
                startswith("0.5")), "")
    check("1.00" in row and "2.00" in row and "0.900" in row,
          f"timeline: wrong first-interval row: {row!r}")
    check("overall Mbps: QUIC=1.00  TCP=2.00  jain=0.9000" in out,
          f"timeline: wrong overall summary: {out}")
    # CSV carries the same numbers, one column per flow plus the jain column.
    code, out, _ = run(tracectl, ["timeline", "--csv", "-", p])
    check(code == 0, f"timeline csv: expected 0, got {code}")
    csv_lines = out.splitlines()
    check(csv_lines[0] == "t_s,QUIC,TCP,jain",
          f"timeline csv: wrong header: {csv_lines[0]!r}")
    check(csv_lines[1] == "0.5,1,2,0.900000",
          f"timeline csv: wrong first row: {csv_lines[1]!r}")
    check(len(csv_lines) == 11, f"timeline csv: expected 10 data rows, got "
          f"{len(csv_lines) - 1}")
    # Other sampled quantities come from the same artifact.
    code, out, _ = run(tracectl, ["timeline", "--value", "cwnd", p])
    check(code == 0 and "40000.00" in out and "20000.00" in out,
          f"timeline cwnd: wrong values: rc={code}: {out}")
    code, out, _ = run(tracectl, ["timeline", "--value", "srtt_ms", p])
    check(code == 0 and "90.00" in out,
          f"timeline srtt: wrong values: rc={code}: {out}")
    code, out, _ = run(tracectl, ["timeline", "--value", "queue", p])
    check(code == 0 and "down" in out and "30000.00" in out,
          f"timeline queue: wrong values: rc={code}: {out}")
    # An artifact without ts: samples is a loud error, not an empty table.
    v2 = os.path.join(td, "timeline_v2.jsonl")
    write_trace(v2, clean_trace_lines())
    code, _, err = run(tracectl, ["timeline", v2])
    check(code == 1 and "no ts: samples" in err,
          f"timeline no samples: expected error, got rc={code}: {err}")


def test_summarize_and_diff(td):
    a_dir = os.path.join(td, "dir_a")
    b_dir = os.path.join(td, "dir_b")
    os.makedirs(a_dir)
    os.makedirs(b_dir)
    write_trace(os.path.join(a_dir, "r0.jsonl"), clean_trace_lines())
    write_trace(os.path.join(b_dir, "r0.jsonl"), clean_trace_lines())
    code, out, err = run(tracectl, ["summarize", a_dir])
    check(code == 0, f"summarize: expected 0, got {code}: {err}")
    check("proto=quic" in out and "handshake: 1 RTT" in out,
          f"summarize output incomplete: {out}")
    code, out, _ = run(tracectl, ["diff", a_dir, b_dir])
    check(code == 0, f"diff identical: expected 0, got {code}: {out}")
    write_trace(os.path.join(b_dir, "r0.jsonl"), storm_trace_lines())
    code, out, _ = run(tracectl, ["diff", a_dir, b_dir])
    check(code == 1 and "quic:spurious_loss" in out,
          f"diff differing: expected spurious_loss delta, got rc={code}: "
          f"{out}")


def bench_result(name, cell_value, wall_ns):
    return {
        "v": 1, "name": name, "rounds": 1,
        "deterministic": {"sections": [
            {"title": "T", "cells": [{"row": "r", "col": "c",
                                      "value": cell_value}]}]},
        "profile": {"wall_ns": wall_ns, "jobs": 4,
                    "events_per_sec": 1000000},
    }


def test_bench_report(td):
    run_a = os.path.join(td, "run_a")
    run_b = os.path.join(td, "run_b")
    os.makedirs(run_a)
    os.makedirs(run_b)
    for d, wall in ((run_a, 10), (run_b, 11)):
        with open(os.path.join(d, "BENCH_x.json"), "w",
                  encoding="utf-8") as f:
            json.dump(bench_result("x", 7, wall * 100000000), f)
    # det: canonical output byte-equal despite differing profiles.
    code_a, det_a, _ = run(bench_report,
                           ["det", os.path.join(run_a, "BENCH_x.json")])
    code_b, det_b, _ = run(bench_report,
                           ["det", os.path.join(run_b, "BENCH_x.json")])
    check(code_a == 0 and code_b == 0, "det: expected exit 0")
    check(det_a == det_b, "det: equal deterministic sections must render "
          "byte-identically")
    # check: passes when deterministic matches, profile differences ignored.
    code, out, _ = run(bench_report, ["check", run_b, "--baselines", run_a])
    check(code == 0, f"check match: expected 0, got {code}: {out}")
    # check: fails on a deterministic drift.
    with open(os.path.join(run_b, "BENCH_x.json"), "w",
              encoding="utf-8") as f:
        json.dump(bench_result("x", 8, 1100000000), f)
    code, out, _ = run(bench_report, ["check", run_b, "--baselines", run_a])
    check(code == 1 and "deterministic section differs" in out,
          f"check drift: expected failure, got rc={code}: {out}")
    # check: fails when a baseline result is missing from the new run.
    os.remove(os.path.join(run_b, "BENCH_x.json"))
    code, out, _ = run(bench_report, ["check", run_b, "--baselines", run_a])
    check(code == 1 and "missing" in out,
          f"check missing: expected failure, got rc={code}: {out}")
    # diff: profile regression beyond threshold is flagged.
    with open(os.path.join(run_b, "BENCH_x.json"), "w",
              encoding="utf-8") as f:
        json.dump(bench_result("x", 7, 10_000_000_000), f)
    code, out, _ = run(bench_report, ["diff", run_a, run_b,
                                      "--threshold", "25"])
    check(code == 1 and "profile regression" in out,
          f"diff regression: expected flag, got rc={code}: {out}")
    # summary renders one row per result.
    code, out, _ = run(bench_report, ["summary", run_a])
    check(code == 0 and "x" in out, f"summary: rc={code}: {out}")


def test_bench_hist(td):
    # One bench result with a per-cell metrics histogram, one trace with a
    # run:hist record: `hist` must find both, render pinned stats, and the
    # markdown table must carry the same rows.
    hist = {"count": 4, "sum": 100, "min": 10, "max": 40, "p50": 20,
            "p90": 40, "p99": 40, "buckets": [[10, 1], [20, 2], [36, 1]]}
    result = bench_result("h", 7, 1000)
    result["deterministic"]["sections"][0]["cells"][0]["metrics"] = {
        "quic.plt_us": hist}
    hist_dir = os.path.join(td, "hist_dir")
    os.makedirs(hist_dir)
    with open(os.path.join(hist_dir, "BENCH_h.json"), "w",
              encoding="utf-8") as f:
        json.dump(result, f)
    write_trace(os.path.join(hist_dir, "r0.jsonl"), clean_trace_lines())

    code, out, err = run(bench_report, ["hist", hist_dir])
    check(code == 0, f"hist: expected 0, got {code}: {err}")
    check("h:rxc:quic.plt_us" in out,
          f"hist: bench histogram label missing: {out}")
    check("r0.jsonl:quic.plt_us" in out,
          f"hist: run:hist trace label missing: {out}")
    row = next(ln for ln in out.splitlines() if "h:rxc" in ln)
    fields = row.split()
    check(fields[1:7] == ["4", "10", "20", "40", "40", "40"],
          f"hist: wrong stats row: {row}")
    check(fields[7] == "25", f"hist: wrong mean (sum//count): {row}")

    code, out, _ = run(bench_report, ["hist", hist_dir, "--markdown",
                                      "--key", "quic.plt_us"])
    check(code == 0 and out.startswith("| histogram |"),
          f"hist --markdown: bad header: {out}")
    check("| h:rxc:quic.plt_us | 4 | 10 | 20 | 40 | 40 | 40 | 25 |" in out,
          f"hist --markdown: pinned row missing: {out}")

    # An unmatched --key filter is a loud usage error, not an empty table.
    code, _, err = run(bench_report, ["hist", hist_dir, "--key", "nope"])
    check(code == 2 and "no histograms" in err,
          f"hist: unmatched key should exit 2: rc={code} {err}")


def floor_result(rounds, counters, events_per_sec=1000000):
    return {
        "v": 1, "name": "floory", "rounds": rounds,
        "deterministic": {"sections": []},
        "profile": {"wall_ns": 1000, "jobs": 1,
                    "events_per_sec": events_per_sec,
                    "agg": {"counters": counters}},
    }


def test_perf_floor(td):
    res = os.path.join(td, "floor_results")
    os.makedirs(res)

    def write_result(data):
        with open(os.path.join(res, "BENCH_floory.json"), "w",
                  encoding="utf-8") as f:
            json.dump(data, f)

    def write_floors(spec):
        path = os.path.join(td, "floors.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"v": 1, "benches": {"floory": spec}}, f)
        return path

    # Green: exact counters match, allocation counter under its ceiling,
    # and a zero counter (elided from the JSON by the profiler) reads as 0.
    write_result(floor_result(1, {"sim_events": 500, "timer_ops": 700,
                                  "sim_event_pool_slots": 40}))
    floors = write_floors({"rounds": 1,
                           "exact": {"sim_events": 500, "timer_ops": 700},
                           "max": {"sim_event_pool_slots": 64,
                                   "sim_callback_heap": 0}})
    code, out, _ = run(bench_report, ["perf-floor", res, "--floors", floors])
    check(code == 0 and "1 result(s) meet" in out,
          f"perf-floor green: rc={code}: {out}")

    # Exact counter drift is a hard failure (behaviour change, not noise).
    write_result(floor_result(1, {"sim_events": 501, "timer_ops": 700}))
    code, out, _ = run(bench_report, ["perf-floor", res, "--floors", floors])
    check(code == 1 and "sim_events = 501 (expected exactly 500)" in out,
          f"perf-floor exact drift: rc={code}: {out}")

    # Allocation ceiling breach is a hard failure.
    write_result(floor_result(1, {"sim_events": 500, "timer_ops": 700,
                                  "sim_event_pool_slots": 65}))
    code, out, _ = run(bench_report, ["perf-floor", res, "--floors", floors])
    check(code == 1 and "exceeds ceiling 64" in out,
          f"perf-floor ceiling: rc={code}: {out}")

    # Rounds mismatch refuses to compare miscalibrated counters.
    write_result(floor_result(5, {"sim_events": 500, "timer_ops": 700}))
    code, out, _ = run(bench_report, ["perf-floor", res, "--floors", floors])
    check(code == 1 and "rounds=5" in out and "rounds=1" in out,
          f"perf-floor rounds guard: rc={code}: {out}")

    # events/sec floor is informational: WARN on stdout, exit still 0.
    write_result(floor_result(1, {"sim_events": 500, "timer_ops": 700},
                              events_per_sec=10))
    floors = write_floors({"rounds": 1, "exact": {"sim_events": 500},
                           "min_events_per_sec": 1000})
    code, out, _ = run(bench_report, ["perf-floor", res, "--floors", floors])
    check(code == 0 and "WARN" in out and "not gated" in out,
          f"perf-floor informational rate: rc={code}: {out}")

    # A bench named in the floors but absent from the results dir fails —
    # silently skipping would let the gate rot.
    floors = write_floors({"rounds": 1, "exact": {"sim_events": 500}})
    os.remove(os.path.join(res, "BENCH_floory.json"))
    code, out, _ = run(bench_report, ["perf-floor", res, "--floors", floors])
    check(code == 1 and "missing" in out,
          f"perf-floor missing result: rc={code}: {out}")


def main_selftest():
    with tempfile.TemporaryDirectory() as td:
        test_validate_ok(td)
        test_validate_rejects(td)
        test_validate_v3_gating(td)
        test_detect(td)
        test_detect_queue_buildup(td)
        test_timeline(td)
        test_summarize_and_diff(td)
        test_bench_report(td)
        test_bench_hist(td)
        test_perf_floor(td)
    if failures:
        print("tracectl_selftest: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("tracectl_selftest: OK (validate strict v1-v3 + flight dumps + "
          "crash-free on fuzz cases, detect golden incl. queue-buildup, "
          "timeline Mbps/Jain pinned, diff, bench_report det/check/diff/"
          "hist/perf-floor pinned)")
    return 0


if __name__ == "__main__":
    sys.exit(main_selftest())
