// Unit tests: byte codecs (varint, integers), RNG determinism and
// distributions, simulated-time helpers, and the LL_CHECK/LL_DCHECK/
// LL_INVARIANT protocol-invariant framework.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "util/bytes.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/time.h"

namespace longlook {
namespace {

TEST(Bytes, FixedWidthRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.empty());
}

TEST(Bytes, ReaderReportsTruncation) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.view());
  EXPECT_FALSE(r.u32().has_value());  // only 2 bytes available
  EXPECT_EQ(r.u16(), 7);              // unconsumed by the failed read
  EXPECT_FALSE(r.u8().has_value());
}

TEST(Bytes, SkipAndRest) {
  ByteWriter w;
  w.str("hello");
  ByteReader r(w.view());
  EXPECT_TRUE(r.skip(2));
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_FALSE(r.skip(4));
  EXPECT_EQ(r.rest().size(), 3u);
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  const std::uint64_t v = GetParam();
  ByteWriter w;
  w.varint(v);
  EXPECT_EQ(w.size(), varint_length(v));
  ByteReader r(w.view());
  EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 62ULL, 63ULL, 64ULL, 16382ULL, 16383ULL,
                      16384ULL, (1ULL << 30) - 1, 1ULL << 30,
                      (1ULL << 40) + 12345, kVarintMax));

TEST(Varint, ClampsAboveMax) {
  ByteWriter w;
  w.varint(kVarintMax + 5);
  ByteReader r(w.view());
  EXPECT_EQ(r.varint(), kVarintMax);
}

TEST(Varint, LengthClasses) {
  EXPECT_EQ(varint_length(0), 1u);
  EXPECT_EQ(varint_length(63), 1u);
  EXPECT_EQ(varint_length(64), 2u);
  EXPECT_EQ(varint_length(16383), 2u);
  EXPECT_EQ(varint_length(16384), 4u);
  EXPECT_EQ(varint_length(1 << 30), 8u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.01)) ++hits;
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.01, 0.002);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, UniformIntUnbiasedSmallRange) {
  Rng rng(13);
  int counts[5] = {0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(Rng, JitteredClampsAtZero) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.jittered(milliseconds(1), milliseconds(10)), kNoDuration);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(21);
  Rng b = a.fork();
  EXPECT_NE(a.next(), b.next());
}

TEST(Time, Conversions) {
  EXPECT_EQ(milliseconds(1), microseconds(1000));
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_DOUBLE_EQ(to_seconds(milliseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(microseconds(2500)), 2.5);
}

TEST(Time, TransmissionDelay) {
  // 1250 bytes at 10 Mbps = 1 ms.
  EXPECT_EQ(transmission_delay(1250, 10'000'000), milliseconds(1));
  // 1500 bytes at 1 Gbps = 12 us.
  EXPECT_EQ(transmission_delay(1500, 1'000'000'000), microseconds(12));
}

// --- LL_CHECK / LL_DCHECK / LL_INVARIANT ---

CheckFailure g_last_failure;
int g_handler_calls = 0;

void recording_handler(const CheckFailure& f) {
  g_last_failure = f;
  ++g_handler_calls;
}

TEST(Check, PassingCheckDoesNotInvokeHandler) {
  ScopedCheckFailHandler scoped(&recording_handler);
  const int calls_before = g_handler_calls;
  const std::uint64_t count_before = check_failure_count();
  LL_CHECK(1 + 1 == 2) << "never formatted";
  LL_INVARIANT(true);
  EXPECT_EQ(g_handler_calls, calls_before);
  EXPECT_EQ(check_failure_count(), count_before);
}

TEST(Check, FailureCarriesLocationConditionAndMessage) {
  ScopedCheckFailHandler scoped(&recording_handler);
  const int calls_before = g_handler_calls;
  const int value = 42;
  LL_CHECK(value == 0) << "value=" << value << " hex=" << std::hex << value;
  const int expected_line = __LINE__ - 1;
  ASSERT_EQ(g_handler_calls, calls_before + 1);
  EXPECT_NE(std::string(g_last_failure.file).find("test_util.cc"),
            std::string::npos);
  EXPECT_EQ(g_last_failure.line, expected_line);
  EXPECT_STREQ(g_last_failure.condition, "value == 0");
  EXPECT_STREQ(g_last_failure.kind, "CHECK");
  EXPECT_EQ(g_last_failure.message, "value=42 hex=2a");
  EXPECT_NE(std::string(g_last_failure.function).find("TestBody"),
            std::string::npos);
}

TEST(Check, InvariantIsTaggedAsInvariant) {
  ScopedCheckFailHandler scoped(&recording_handler);
  LL_INVARIANT(false) << "protocol property violated";
  EXPECT_STREQ(g_last_failure.kind, "INVARIANT");
  EXPECT_EQ(g_last_failure.message, "protocol property violated");
}

TEST(Check, MessageIsOptional) {
  ScopedCheckFailHandler scoped(&recording_handler);
  LL_CHECK(false);
  EXPECT_EQ(g_last_failure.message, "");
  EXPECT_STREQ(g_last_failure.condition, "false");
}

TEST(Check, ToStringFormatsAllFields) {
  ScopedCheckFailHandler scoped(&recording_handler);
  LL_INVARIANT(2 < 1) << "ordering broke";
  const std::string s = g_last_failure.to_string();
  EXPECT_NE(s.find("test_util.cc"), std::string::npos);
  EXPECT_NE(s.find("INVARIANT failed"), std::string::npos);
  EXPECT_NE(s.find("(2 < 1)"), std::string::npos);
  EXPECT_NE(s.find("ordering broke"), std::string::npos);
}

TEST(Check, FailureCountAccumulatesAcrossHandlers) {
  ScopedCheckFailHandler scoped(&recording_handler);
  const std::uint64_t before = check_failure_count();
  LL_CHECK(false) << "one";
  LL_INVARIANT(false) << "two";
  EXPECT_EQ(check_failure_count(), before + 2);
}

TEST(Check, SetHandlerReturnsPreviousAndScopedRestores) {
  CheckFailHandler original = set_check_fail_handler(&recording_handler);
  {
    ScopedCheckFailHandler scoped(original);
    // Inside the scope the original handler is active again; swapping in
    // the recorder must hand back the original.
    CheckFailHandler prev = set_check_fail_handler(&recording_handler);
    EXPECT_EQ(prev, original);
  }
  // Scope exit restored the recorder; putting the original back returns it.
  CheckFailHandler prev = set_check_fail_handler(original);
  EXPECT_EQ(prev, &recording_handler);
}

TEST(Check, ExecutionContinuesWhenHandlerReturns) {
  ScopedCheckFailHandler scoped(&recording_handler);
  bool reached = false;
  LL_CHECK(false) << "non-fatal under a returning handler";
  reached = true;
  EXPECT_TRUE(reached);
}

#if defined(NDEBUG) && !defined(LL_FORCE_DCHECKS)
TEST(Check, DisabledDcheckDoesNotEvaluateCondition) {
  ScopedCheckFailHandler scoped(&recording_handler);
  const int calls_before = g_handler_calls;
  int evaluations = 0;
  LL_DCHECK(++evaluations > 0) << "side effect";
  LL_DCHECK(false) << "never reported";
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(g_handler_calls, calls_before);
}
#else
TEST(Check, EnabledDcheckReportsAsDcheck) {
  ScopedCheckFailHandler scoped(&recording_handler);
  int evaluations = 0;
  LL_DCHECK(++evaluations > 0) << "passes";
  LL_DCHECK(false) << "fires";
  EXPECT_EQ(evaluations, 1);
  EXPECT_STREQ(g_last_failure.kind, "DCHECK");
  EXPECT_EQ(g_last_failure.message, "fires");
}
#endif

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, DefaultHandlerAborts) {
  EXPECT_DEATH(LL_CHECK(1 == 2) << "fatal by default",
               "CHECK failed.*\\(1 == 2\\).*fatal by default");
}

TEST(CheckDeathTest, InvariantAbortsWithLocation) {
  EXPECT_DEATH(LL_INVARIANT(false) << "state machine broke",
               "test_util.cc.*INVARIANT failed.*state machine broke");
}

}  // namespace
}  // namespace longlook
