// Unit tests: video streaming QoE model — startup, steady playback at
// sustainable bitrates, rebuffering when the link can't keep up, and the
// fetch throttle.
#include <gtest/gtest.h>

#include "harness/testbed.h"
#include "http/object_service.h"
#include "http/quic_session.h"
#include "video/streaming.h"

namespace longlook::video {
namespace {

QoeMetrics stream(const harness::Scenario& scenario, StreamingConfig cfg) {
  harness::Testbed tb(scenario);
  http::QuicObjectServer server(tb.sim(), tb.server_host(),
                                harness::kQuicPort, quic::QuicConfig{});
  quic::TokenCache tokens;
  http::QuicClientSession session(tb.sim(), tb.client_host(),
                                  tb.server_host().address(),
                                  harness::kQuicPort, quic::QuicConfig{},
                                  tokens);
  StreamingSession player(tb.sim(), session, cfg);
  player.start(nullptr);
  tb.run_until([&] { return player.finished(); },
               cfg.watch_time + seconds(30));
  return player.metrics();
}

TEST(Video, SmoothPlaybackAtSustainableBitrate) {
  harness::Scenario s;
  s.rate_bps = 50'000'000;
  StreamingConfig cfg;
  cfg.quality = quality_hd720();  // 2.5 Mbps << 50 Mbps
  const QoeMetrics m = stream(s, cfg);
  EXPECT_TRUE(m.started);
  EXPECT_LT(m.time_to_start_s, 2.0);
  EXPECT_EQ(m.rebuffer_count, 0);
  EXPECT_NEAR(m.played_seconds, 60.0 - m.time_to_start_s, 1.0);
}

TEST(Video, RebuffersWhenBitrateExceedsLink) {
  harness::Scenario s;
  s.rate_bps = 20'000'000;  // hd2160 needs 45 Mbps
  StreamingConfig cfg;
  cfg.quality = quality_hd2160();
  const QoeMetrics m = stream(s, cfg);
  EXPECT_TRUE(m.started);
  EXPECT_GT(m.rebuffer_count, 0);
  EXPECT_GT(m.stalled_seconds, 1.0);
  EXPECT_LT(m.played_seconds, 55.0);
}

TEST(Video, FractionLoadedScalesWithBitrate) {
  // On a link that sustains the tiny encode but not hd720, the tiny encode
  // covers a larger fraction of the hour-long video within the watch time.
  harness::Scenario s;
  s.rate_bps = 2'000'000;  // 2 Mbps: tiny (0.3 Mbps) ok, hd720 (2.5) is not
  StreamingConfig tiny_cfg;
  tiny_cfg.quality = quality_tiny();
  StreamingConfig hd_cfg;
  hd_cfg.quality = quality_hd720();
  const QoeMetrics tiny = stream(s, tiny_cfg);
  const QoeMetrics hd = stream(s, hd_cfg);
  EXPECT_GT(tiny.fraction_loaded_pct, hd.fraction_loaded_pct);
  EXPECT_GT(hd.rebuffer_count, 0);
  EXPECT_EQ(tiny.rebuffer_count, 0);
}

TEST(Video, ThrottleCapsBufferedAhead) {
  harness::Scenario s;
  s.rate_bps = 100'000'000;
  StreamingConfig cfg;
  cfg.quality = quality_tiny();        // trivially sustainable
  cfg.max_buffer_ahead = seconds(30);  // tight cap
  const QoeMetrics m = stream(s, cfg);
  // At most ~watch time + cap worth of video fetched, never the whole hour.
  const double max_expected_s = 60.0 + 30.0 + 10.0;
  EXPECT_LT(m.fraction_loaded_pct, max_expected_s / 3600.0 * 100.0 + 1.0);
}

TEST(Video, QualityLadderIsOrdered) {
  const auto all = all_qualities();
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i].bitrate_bps, all[i - 1].bitrate_bps);
  }
  EXPECT_EQ(all[0].name, "tiny");
  EXPECT_EQ(all[3].name, "hd2160");
}

TEST(Video, MetricsInternallyConsistent) {
  harness::Scenario s;
  s.rate_bps = 20'000'000;
  StreamingConfig cfg;
  cfg.quality = quality_hd2160();
  const QoeMetrics m = stream(s, cfg);
  if (m.played_seconds > 0) {
    EXPECT_NEAR(m.rebuffers_per_played_sec,
                m.rebuffer_count / m.played_seconds, 1e-9);
    EXPECT_NEAR(m.buffer_play_ratio_pct,
                100.0 * m.stalled_seconds / m.played_seconds, 1e-9);
  }
}

}  // namespace
}  // namespace longlook::video
