// Workload scenario DSL tests: parser grammar + file:col diagnostics,
// start-after cycle rejection, the parse → format → parse round-trip
// property, the PRF request handling in ObjectService (including the
// exactly-once response regression), and the ScenarioRunner executor over
// both real stacks and a synchronous fake session (completion-inside-
// callback reentrancy).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/perf.h"
#include "harness/testbed.h"
#include "http/object_service.h"
#include "http/page_loader.h"
#include "http/quic_session.h"
#include "util/rng.h"
#include "workload/executor.h"
#include "workload/scenario.h"

namespace longlook::workload {
namespace {

// --- Parser ----------------------------------------------------------------

TEST(ScenarioParser, ParsesSingleEntry) {
  const ParseResult r = parse_scenario("*1:0:-:397:5000000;");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.spec->streams.size(), 1u);
  const StreamSpec& s = r.spec->streams[0];
  EXPECT_EQ(s.repeat, 1u);
  EXPECT_EQ(s.stream_id, 0u);
  EXPECT_FALSE(s.start_after.has_value());
  EXPECT_EQ(s.upload_bytes, 397u);
  EXPECT_EQ(s.download_bytes, 5000000u);
  EXPECT_FALSE(s.is_page());
}

TEST(ScenarioParser, ParsesDependentEntries) {
  const ParseResult r = parse_scenario("*1:0:-:397:5000;*1:4:0:432:4999;");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.spec->streams.size(), 2u);
  EXPECT_FALSE(r.spec->streams[0].start_after.has_value());
  ASSERT_TRUE(r.spec->streams[1].start_after.has_value());
  EXPECT_EQ(*r.spec->streams[1].start_after, 0u);
  EXPECT_EQ(r.spec->total_transactions(), 2u);
  EXPECT_EQ(r.spec->total_download_bytes(), 5000u + 4999u);
  EXPECT_EQ(r.spec->total_upload_bytes(), 397u + 432u);
}

TEST(ScenarioParser, ParsesPageReferences) {
  const ParseResult named = parse_scenario("*2:0:-:page=many_small;");
  ASSERT_TRUE(named.ok()) << named.error;
  ASSERT_TRUE(named.spec->streams[0].is_page());
  EXPECT_EQ(named.spec->streams[0].page->object_count, 100u);
  EXPECT_EQ(named.spec->streams[0].page_ref, "many_small");

  const ParseResult sized = parse_scenario("*1:0:-:page=10x10240;");
  ASSERT_TRUE(sized.ok()) << sized.error;
  EXPECT_EQ(sized.spec->streams[0].page->object_count, 10u);
  EXPECT_EQ(sized.spec->streams[0].page->object_bytes, 10240u);
  EXPECT_EQ(sized.spec->total_download_bytes(), 10u * 10240u);
}

TEST(ScenarioParser, SkipsWhitespaceBetweenTokens) {
  const ParseResult r =
      parse_scenario("  *1 : 0 : - : 10 : 20 ;\n *1:1:0:0:5;");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.spec->streams.size(), 2u);
}

TEST(ScenarioParser, ErrorsCarryLabelAndColumn) {
  // Column 1: the text does not begin with '*'.
  EXPECT_EQ(parse_scenario("x", "wl.scn").error.rfind("wl.scn:1:", 0), 0u);
  // Empty input is its own diagnostic.
  EXPECT_NE(parse_scenario("").error.find("empty scenario"),
            std::string::npos);
  // Missing fields name what was expected.
  const std::string missing = parse_scenario("*1:0:-:397;").error;
  EXPECT_NE(missing.find("after upload byte count"), std::string::npos);
}

TEST(ScenarioParser, RejectsMalformedAndOverflowingNumbers) {
  const std::string overflow =
      parse_scenario("*1:0:-:99999999999999999999:1;").error;
  EXPECT_NE(overflow.find("99999999999999999999"), std::string::npos)
      << overflow;
  EXPECT_NE(overflow.find("out of range"), std::string::npos);
  EXPECT_FALSE(parse_scenario("*0:0:-:1:1;").ok());  // repeat must be >= 1
  EXPECT_FALSE(parse_scenario("*a:0:-:1:1;").ok());
}

TEST(ScenarioParser, RejectsDuplicateStreamIds) {
  const std::string err = parse_scenario("*1:0:-:1:1;*1:0:-:1:1;").error;
  EXPECT_NE(err.find("duplicate stream id 0"), std::string::npos) << err;
}

TEST(ScenarioParser, RejectsUndeclaredStartAfter) {
  const std::string err = parse_scenario("*1:0:9:1:1;").error;
  EXPECT_NE(err.find("undeclared stream 9"), std::string::npos) << err;
}

TEST(ScenarioParser, RejectsSelfReference) {
  const std::string err = parse_scenario("*1:0:0:1:1;").error;
  EXPECT_NE(err.find("cycle"), std::string::npos) << err;
}

TEST(ScenarioParser, RejectsStartAfterCycles) {
  // 0 -> 1 -> 2 -> 0.
  const std::string err =
      parse_scenario("*1:0:1:1:1;*1:1:2:1:1;*1:2:0:1:1;").error;
  EXPECT_NE(err.find("cycle"), std::string::npos) << err;
  // A diamond (both children wait on one parent) is NOT a cycle.
  EXPECT_TRUE(parse_scenario("*1:0:-:1:1;*1:1:0:1:1;*1:2:0:1:1;").ok());
  // Forward references are fine: dependencies come from the graph, not the
  // text order.
  EXPECT_TRUE(parse_scenario("*1:0:5:1:1;*1:5:-:1:1;").ok());
}

TEST(ScenarioParser, RejectsUnknownPageGraph) {
  const std::string err = parse_scenario("*1:0:-:page=nope;").error;
  EXPECT_NE(err.find("unknown page graph 'nope'"), std::string::npos) << err;
}

// --- parse → format → parse round-trip property ----------------------------

ScenarioSpec random_spec(Rng& rng) {
  ScenarioSpec spec;
  const std::size_t n = 1 + rng.uniform_int(5);
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < n; ++i) {
    StreamSpec s;
    s.repeat = 1 + rng.uniform_int(4);
    s.stream_id = i * 4 + rng.uniform_int(3);  // unique, not contiguous
    if (!ids.empty() && rng.uniform_int(2) == 0) {
      // Earlier entries only: acyclic by construction.
      s.start_after = ids[rng.uniform_int(ids.size())];
    }
    if (rng.uniform_int(4) == 0) {
      const std::uint64_t count = 1 + rng.uniform_int(4);
      const std::uint64_t bytes = 1 + rng.uniform_int(100000);
      s.page_ref = std::to_string(count) + "x" + std::to_string(bytes);
      s.page = PageGraph{static_cast<std::size_t>(count),
                         static_cast<std::size_t>(bytes)};
    } else {
      s.upload_bytes = rng.uniform_int(1000000);
      s.download_bytes = rng.uniform_int(1000000);
    }
    ids.push_back(s.stream_id);
    spec.streams.push_back(std::move(s));
  }
  return spec;
}

TEST(ScenarioRoundTrip, FormatParsesBackToIdenticalAst) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const ScenarioSpec spec = random_spec(rng);
    const std::string text = spec.format();
    const ParseResult reparsed = parse_scenario(text);
    ASSERT_TRUE(reparsed.ok()) << text << " -> " << reparsed.error;
    EXPECT_EQ(*reparsed.spec, spec) << text;
    // format() is canonical: a second round trip is a fixed point.
    EXPECT_EQ(reparsed.spec->format(), text);
  }
}

TEST(ScenarioRoundTrip, NamedPageRefsSurviveFormatting) {
  const ParseResult r = parse_scenario("*1:0:-:page=small;*1:1:0:5:6;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.spec->format(), "*1:0:-:page=small;*1:1:0:5:6;");
  const ParseResult again = parse_scenario(r.spec->format());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again.spec, *r.spec);
}

}  // namespace
}  // namespace longlook::workload

namespace longlook::http {
namespace {

// --- ObjectService: PRF requests + exactly-once response regression --------

// Minimal in-memory AppStream: records writes, delivers injected data.
class FakeAppStream : public AppStream {
 public:
  void write(BytesView data, bool fin) override {
    bytes_written += data.size();
    if (fin) ++fin_writes;
    ++writes;
  }
  void set_on_data(std::function<void(BytesView, bool)> fn) override {
    on_data = std::move(fn);
  }
  std::uint64_t id() const override { return 1; }

  void deliver(std::string_view text, bool fin) {
    on_data(BytesView(reinterpret_cast<const std::uint8_t*>(text.data()),
                      text.size()),
            fin);
  }

  std::function<void(BytesView, bool)> on_data;
  std::size_t bytes_written = 0;
  int writes = 0;
  int fin_writes = 0;
};

TEST(ObjectServicePerf, RegressionFinAfterGetDoesNotRespondTwice) {
  // Regression (fails pre-fix): a delivery arriving after the GET line was
  // handled — here the client's bare fin, exactly what a transport delivers
  // when a scenario client half-closes — re-found the '\n' in the
  // accumulated buffer and responded a second time on the same stream.
  Simulator sim;
  ObjectService svc(sim);
  FakeAppStream stream;
  svc.serve(stream, nullptr);
  stream.deliver("GET /obj0 10\n", false);
  EXPECT_EQ(svc.requests_served(), 1u);
  const std::size_t after_first = stream.bytes_written;
  stream.deliver("", true);
  EXPECT_EQ(svc.requests_served(), 1u);  // pre-fix: 2
  EXPECT_EQ(stream.bytes_written, after_first);
  EXPECT_EQ(stream.fin_writes, 1);
}

TEST(ObjectServicePerf, RespondsAfterFullUploadBody) {
  Simulator sim;
  ObjectService svc(sim);
  FakeAppStream stream;
  svc.serve(stream, nullptr);
  stream.deliver("PRF 50 6\n", false);
  EXPECT_EQ(svc.requests_served(), 0u);  // body outstanding
  stream.deliver("abc", false);
  EXPECT_EQ(svc.requests_served(), 0u);
  stream.deliver("def", true);
  EXPECT_EQ(svc.requests_served(), 1u);
  EXPECT_EQ(svc.upload_bytes_received(), 6u);
  EXPECT_EQ(stream.bytes_written, 50u);
  EXPECT_EQ(stream.fin_writes, 1);
  // Nothing after the response — not even another fin.
  stream.deliver("", true);
  EXPECT_EQ(svc.requests_served(), 1u);
  EXPECT_EQ(stream.bytes_written, 50u);
}

TEST(ObjectServicePerf, HeaderSplitAcrossDeliveries) {
  Simulator sim;
  ObjectService svc(sim);
  FakeAppStream stream;
  svc.serve(stream, nullptr);
  stream.deliver("PRF 1", false);
  stream.deliver("2 3\nab", false);  // header completes; 2 body bytes ride
  EXPECT_EQ(svc.requests_served(), 0u);
  stream.deliver("c", true);
  EXPECT_EQ(svc.requests_served(), 1u);
  EXPECT_EQ(svc.upload_bytes_received(), 3u);
  EXPECT_EQ(stream.bytes_written, 12u);
}

TEST(ObjectServicePerf, ZeroUploadRespondsAtFin) {
  Simulator sim;
  ObjectService svc(sim);
  FakeAppStream stream;
  svc.serve(stream, nullptr);
  stream.deliver("PRF 7 0\n", true);
  EXPECT_EQ(svc.requests_served(), 1u);
  EXPECT_EQ(stream.bytes_written, 7u);
}

// --- PageLoader hardening ---------------------------------------------------

// A session that advertises capacity but cannot open streams: the loader
// must bail out of its issue loop instead of spinning (pre-fix: infinite
// loop in issue_requests).
class StuckSession : public ClientSession {
 public:
  void connect(std::function<void()> on_ready) override { on_ready(); }
  AppStream* open_stream() override { return nullptr; }
  bool can_open_stream() const override { return true; }
  void flush() override {}
  const char* protocol_name() const override { return "stuck"; }
};

TEST(PageLoaderHardening, NullStreamWithFreeSlotDoesNotSpin) {
  Simulator sim;
  StuckSession session;
  PageLoader loader(sim, session, {3, 100});
  loader.start();  // pre-fix: never returns
  EXPECT_FALSE(loader.finished());
}

}  // namespace
}  // namespace longlook::http

namespace longlook::workload {
namespace {

// --- Executor over a synchronous fake session -------------------------------

// Streams that deliver the whole response (1 byte + fin) synchronously
// inside write(): every completion — including the parent completion that
// triggers a dependent entry — happens inside the caller's own event
// callback, the reentrancy shape from PR 2.
class EchoStream : public http::AppStream {
 public:
  void write(BytesView, bool) override {
    if (!responded_) {
      responded_ = true;
      const std::uint8_t byte = 0;
      on_data_(BytesView(&byte, 1), true);
    }
  }
  void set_on_data(std::function<void(BytesView, bool)> fn) override {
    on_data_ = std::move(fn);
  }
  std::uint64_t id() const override { return 1; }

 private:
  std::function<void(BytesView, bool)> on_data_;
  bool responded_ = false;
};

class EchoSession : public http::ClientSession {
 public:
  void connect(std::function<void()> on_ready) override { on_ready(); }
  http::AppStream* open_stream() override {
    streams_.push_back(std::make_unique<EchoStream>());
    ++opened;
    return streams_.back().get();
  }
  bool can_open_stream() const override { return true; }
  void flush() override {}
  const char* protocol_name() const override { return "echo"; }

  int opened = 0;

 private:
  std::vector<std::unique_ptr<EchoStream>> streams_;
};

TEST(ScenarioRunnerReentrancy, DependentEntryStartsExactlyOnce) {
  // Parent (stream 0) completes synchronously inside its own write() call;
  // both dependents must start exactly once each, and the whole chain runs
  // to completion without extra streams.
  Simulator sim;
  EchoSession session;
  const ParseResult r =
      parse_scenario("*1:0:-:0:1;*2:1:0:0:1;*1:2:0:0:1;*1:3:1:0:1;");
  ASSERT_TRUE(r.ok()) << r.error;
  ScenarioRunner runner(sim, session, *r.spec);
  runner.start();
  EXPECT_TRUE(runner.finished());
  // 1 (stream 0) + 2 (stream 1 repeats) + 1 (stream 2) + 1 (stream 3):
  // one transport stream per transaction, no double starts.
  EXPECT_EQ(session.opened, 5);
  EXPECT_EQ(runner.result().transactions, 5u);
}

// --- Executor over the real stacks ------------------------------------------

struct QuicFixture {
  harness::Scenario scenario;
  harness::Testbed tb{scenario};
  http::QuicObjectServer server{tb.sim(), tb.server_host(),
                                harness::kQuicPort, quic::QuicConfig{}};
  quic::TokenCache tokens;
  http::QuicClientSession session{tb.sim(),
                                  tb.client_host(),
                                  tb.server_host().address(),
                                  harness::kQuicPort,
                                  quic::QuicConfig{},
                                  tokens};
};

TEST(ScenarioRunnerQuic, DependentStreamWaitsForParent) {
  QuicFixture f;
  const ParseResult r = parse_scenario("*1:0:-:100:2000;*1:4:0:0:1000;");
  ASSERT_TRUE(r.ok()) << r.error;
  ScenarioRunner runner(f.tb.sim(), f.session, *r.spec);
  runner.start();
  ASSERT_TRUE(f.tb.run_until([&] { return runner.finished(); }, seconds(30)));
  const ScenarioResult& res = runner.result();
  EXPECT_EQ(res.transactions, 2u);
  EXPECT_EQ(res.download_bytes, 3000u);
  EXPECT_EQ(res.upload_bytes, 100u);
  EXPECT_EQ(f.server.service().upload_bytes_received(), 100u);
  // The dependent transaction was issued no earlier than the parent's
  // completion.
  ASSERT_EQ(res.detail.size(), 2u);
  const TransactionTiming& parent = res.detail[0];
  const TransactionTiming& child = res.detail[1];
  EXPECT_EQ(parent.stream_id, 0u);
  EXPECT_EQ(child.stream_id, 4u);
  EXPECT_GE(child.issued, parent.completed);
}

TEST(ScenarioRunnerQuic, RepeatedTransactionsRunSequentially) {
  QuicFixture f;
  const ParseResult r = parse_scenario("*3:0:-:0:500;");
  ASSERT_TRUE(r.ok()) << r.error;
  ScenarioRunner runner(f.tb.sim(), f.session, *r.spec);
  runner.start();
  ASSERT_TRUE(f.tb.run_until([&] { return runner.finished(); }, seconds(30)));
  const ScenarioResult& res = runner.result();
  ASSERT_EQ(res.detail.size(), 3u);
  for (std::size_t i = 1; i < res.detail.size(); ++i) {
    EXPECT_GE(res.detail[i].issued, res.detail[i - 1].completed);
  }
  EXPECT_EQ(res.download_bytes, 1500u);
}

TEST(ScenarioRunnerQuic, PageEntryFetchesWholeGraph) {
  QuicFixture f;
  const ParseResult r = parse_scenario("*1:0:-:page=3x1000;");
  ASSERT_TRUE(r.ok()) << r.error;
  ScenarioRunner runner(f.tb.sim(), f.session, *r.spec);
  runner.start();
  ASSERT_TRUE(f.tb.run_until([&] { return runner.finished(); }, seconds(30)));
  EXPECT_EQ(runner.result().transactions, 3u);
  EXPECT_EQ(runner.result().download_bytes, 3000u);
  EXPECT_EQ(f.server.service().requests_served(), 3u);
}

// --- Harness scenario path ---------------------------------------------------

TEST(HarnessScenario, QuicAndTcpRunsComplete) {
  harness::Scenario net;
  net.rate_bps = 10'000'000;
  const ParseResult r = parse_scenario("*2:0:-:64:2048;*1:4:0:0:1000;");
  ASSERT_TRUE(r.ok()) << r.error;
  harness::CompareOptions opts;
  opts.warm_zero_rtt = false;
  quic::TokenCache tokens;
  const auto q = harness::run_quic_scenario(net, *r.spec, opts, tokens);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->transactions, 3u);
  EXPECT_EQ(q->download_bytes, 2u * 2048u + 1000u);
  EXPECT_GT(q->duration_s, 0.0);
  const auto t = harness::run_tcp_scenario(net, *r.spec, opts);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->transactions, 3u);
  EXPECT_EQ(t->download_bytes, 2u * 2048u + 1000u);
}

TEST(HarnessScenario, CompareCellIsWorkerCountIndependent) {
  // The bench-level LL_JOBS determinism contract, pinned at unit level:
  // identical CellResult (PLTs + folded metrics) from a 1-worker and a
  // 4-worker sweep.
  const ParseResult r = parse_scenario("*2:0:-:32:1024;");
  ASSERT_TRUE(r.ok()) << r.error;
  harness::Scenario net;
  net.rate_bps = 10'000'000;
  harness::CompareOptions opts;
  opts.rounds = 3;
  auto run_with = [&](int jobs) {
    harness::SweepRunner runner(jobs);
    harness::CellResult out;
    harness::compare_scenario_async(runner, net, *r.spec, opts, &out);
    runner.wait_all();
    return out;
  };
  const harness::CellResult a = run_with(1);
  const harness::CellResult b = run_with(4);
  EXPECT_EQ(a.quic_plt_s, b.quic_plt_s);
  EXPECT_EQ(a.tcp_plt_s, b.tcp_plt_s);
  EXPECT_EQ(a.metrics.to_json(), b.metrics.to_json());
}

}  // namespace
}  // namespace longlook::workload
