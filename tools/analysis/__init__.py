"""longlook token-aware static analyzer (tools/analysis).

A small multi-pass analyzer for the repo's C++ sources. Unlike the original
line-regex lint it lexes the input (string/char literals, //, /* */ and raw
strings handled; preprocessor lines skipped), so rules see real token
streams, survive multi-line constructs, and never fire inside comments or
literals. See docs/static_analysis.md for the rule catalog and the
`// ll-analysis: allow(<rule>) <reason>` suppression syntax.
"""

from .engine import (  # noqa: F401
    ALL_RULE_NAMES,
    LEGACY_RULE_NAMES,
    AnalysisError,
    Finding,
    analyze_paths,
    main,
)
