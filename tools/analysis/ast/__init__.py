"""Flow-sensitive AST analysis layer for the longlook analyzer.

Sits on top of the token-aware engine in tools/analysis/: same finding
format, same `--json` report shape, same exit codes, and the same
`// ll-analysis: allow(<rule>) <reason>` suppression syntax. The layer adds
what the token stream cannot express: statement-ordered dataflow inside
function bodies (lambda escape, iterator kill/use, lock scopes, value flow
through calls and returns).

Two frontends share one IR (astmodel.TranslationUnit):

  * `clang`    — libclang via clang.cindex, driven by the repo's exported
                 compile_commands.json. Full-fidelity symbol tables
                 (canonical types, cross-file class layouts). Optional:
                 when libclang is missing the runner degrades loudly, it
                 never fails.
  * `internal` — a pure-Python structural parser (parser.py) built on
                 tools/analysis/lexer.py. Always available; this is what
                 the self-test pins so fixture counts are reproducible on
                 machines without libclang.

Entry point: tools/analysis/ast/run_ast_analysis.py (ctest `ast-analysis`,
self-test `analysis-ast-selftest`).
"""

from .engine import analyze_paths_ast, main  # noqa: F401
from .rules import AST_RULES, AST_RULE_NAMES  # noqa: F401
