"""Shared IR for the flow-sensitive analysis layer.

Both frontends (parser.py, clang_frontend.py) produce this model. It is a
CFG-lite: function bodies become ordered statement trees (Block/Stmt) whose
leaves keep their raw token slices, so rules can walk control structure
*and* still pattern-match expression tokens with the helpers the token
layer already proved out. Symbol tables (classes, fields, function
signatures) are separated out so the clang frontend can swap in
full-fidelity versions without touching the statement walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..lexer import Token

# Statement kinds produced by the parsers. Control statements carry their
# parenthesized head in `head` and their bodies in `blocks` (if: then[,
# else]; loops: one body). 'decl' and 'expr' keep the whole statement in
# `head`.
STMT_KINDS = (
    "decl", "expr", "return", "if", "while", "dowhile", "for", "rangefor",
    "switch", "block", "break", "continue", "goto", "empty", "try",
)


@dataclass
class Param:
    type_text: str
    name: str


@dataclass
class FieldInfo:
    name: str
    type_text: str
    line: int
    guarded_by: Optional[str] = None  # mutex member named by LL_GUARDED_BY


@dataclass
class ClassInfo:
    name: str
    line: int
    fields: Dict[str, FieldInfo] = field(default_factory=dict)
    mutexes: List[str] = field(default_factory=list)


@dataclass
class Stmt:
    kind: str
    line: int
    head: List[Token] = field(default_factory=list)
    blocks: List["Block"] = field(default_factory=list)
    # kind == 'decl'
    decl_type: Optional[str] = None   # joined type text incl. trailing */&
    decl_name: Optional[str] = None
    init: Optional[List[Token]] = None
    # kind == 'rangefor'
    loop_var_type: Optional[str] = None
    loop_var: Optional[str] = None
    range_expr: Optional[List[Token]] = None
    # kind == 'for' (classic): the init clause, parsed as its own statement
    for_init: Optional["Stmt"] = None


@dataclass
class Block:
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class FunctionInfo:
    name: str                  # unqualified
    qualname: str              # 'Class::name' when the definition says so
    class_name: Optional[str]
    return_type: str           # joined token text; '' for ctors/dtors
    params: List[Param]
    line: int
    body: Optional[Block]      # None for pure declarations
    # Mutexes named by LL_REQUIRES on the declaration or definition: the
    # caller already holds them when the body runs.
    requires_lock: List[str] = field(default_factory=list)


@dataclass
class SymbolTable:
    """Type facts the rules consult; swappable per frontend.

    functions maps an *unqualified* name to every known signature; rules
    only act when the name resolves unambiguously (a single signature or
    signatures that agree), so partial tables degrade to silence, never to
    false positives.
    """
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, List[FunctionInfo]] = field(default_factory=dict)
    # Names (fields or file-level locals) known to be std::unordered_*.
    unordered_names: frozenset = frozenset()
    source: str = "internal"   # which frontend built the table


@dataclass
class TranslationUnit:
    rel: str                   # repo-relative path
    tokens: List[Token]
    functions: List[FunctionInfo]   # definitions with bodies, in file order
    symbols: SymbolTable
    frontend: str = "internal"


def is_narrow_int(type_text: str) -> bool:
    """True when `type_text` names a <=32-bit integer type.

    Mirrors the token layer's _NARROW_INT set but works on joined type
    text (e.g. 'const std::int32_t', 'unsigned int', 'int32_t').
    """
    words = type_text.replace("std::", " ").replace("::", " ") \
        .replace("*", " ").replace("&", " ").split()
    words = [w for w in words if w not in ("const", "volatile", "signed")]
    if not words:
        return False
    if "long" in words or any(w in ("int64_t", "uint64_t", "intptr_t",
                                    "uintptr_t", "size_t", "ptrdiff_t",
                                    "double", "float", "auto")
                              for w in words):
        return False
    narrow = {"char", "short", "int", "int8_t", "int16_t", "int32_t",
              "uint8_t", "uint16_t", "uint32_t"}
    if words == ["unsigned"]:
        return True
    return any(w in narrow for w in words)


def walk_blocks(block: Block):
    """Pre-order walk yielding every Stmt in a block tree."""
    for stmt in block.stmts:
        yield stmt
        if stmt.for_init is not None:
            yield stmt.for_init
        for sub in stmt.blocks:
            yield from walk_blocks(sub)
