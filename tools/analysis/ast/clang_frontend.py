"""Optional libclang frontend.

When `clang.cindex` + a loadable libclang are present, this frontend
upgrades both halves of the internal parser's translation unit:

  * **symbol tables** — canonical field/parameter types, `guarded_by`
    attributes recovered from the expanded `LL_GUARDED_BY` macro, and
    cross-file class layouts via `compile_commands.json` include paths;
  * **statement trees** — function bodies are rebuilt from clang's
    statement cursors (if/while/for/range-for/switch/do/try/return/decl
    and expression statements), so control structure comes from a real
    compiler instead of the internal parser's heuristics.

The rebuilt trees target *finding identity* with the internal frontend
(pinned by the differential selftest): statement heads are re-lexed with
tools/analysis/lexer.py token spellings, expression/decl heads keep their
terminating ';', switch case labels are flattened exactly like the
internal parser, and a statement spelled as a macro invocation (clang
sees the expansion, the internal parser sees the call) degrades to the
same opaque 'expr' node the internal parser produces. The function *set*
is pinned to the internal parser's — clang rebuilds the bodies of
functions both frontends agree on, so a cursor the internal parser cannot
see never creates a frontend-only finding.

Everything here is defensive: any clang failure (missing library, parse
error, ABI mismatch, an unconvertible body) degrades to the internal TU
or the internal body with a one-line warning. The analyzer never
hard-fails because libclang is absent — that mirrors
tools/run_clang_tidy.sh, which exits 0 with a loud skip.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple

from ..lexer import Token
from ..rules import _is, _matching
from .astmodel import (
    Block, ClassInfo, FieldInfo, FunctionInfo, Param, Stmt, TranslationUnit,
)
from . import parser as internal_parser

_probe_result: Optional[Tuple[bool, str]] = None


def clang_available() -> Tuple[bool, str]:
    """(available, detail). Cached: probing libclang loads a shared lib."""
    global _probe_result
    if _probe_result is not None:
        return _probe_result
    try:
        import clang.cindex as ci  # noqa: F401
    except ImportError as e:
        _probe_result = (False, f"python clang bindings missing ({e})")
        return _probe_result
    try:
        ci.Index.create()
    except Exception as e:  # libclang .so missing or ABI mismatch
        _probe_result = (False, f"libclang not loadable ({e})")
        return _probe_result
    _probe_result = (True, "libclang loaded")
    return _probe_result


def _compile_args(root: Path, fs_path: Path) -> List[str]:
    """Best-effort args for `fs_path` from build/compile_commands.json."""
    db = root / "build" / "compile_commands.json"
    if not db.is_file():
        return ["-std=c++17", f"-I{root / 'src'}"]
    try:
        entries = json.loads(db.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return ["-std=c++17", f"-I{root / 'src'}"]
    want = fs_path.resolve().as_posix()
    for entry in entries:
        ef = Path(entry.get("directory", "."), entry.get("file", ""))
        if ef.resolve().as_posix() != want:
            continue
        args = entry.get("arguments") or entry.get("command", "").split()
        keep: List[str] = []
        it = iter(args[1:])  # drop the compiler itself
        for a in it:
            if a in ("-c", "-o"):
                next(it, None)
                continue
            if a.endswith((".cc", ".cpp", ".cxx", ".o")):
                continue
            keep.append(a)
        return keep
    return ["-std=c++17", f"-I{root / 'src'}"]


def _guarded_by_of(cursor) -> Optional[str]:
    """Mutex name from a guarded_by attribute child, if any."""
    import clang.cindex as ci
    for child in cursor.get_children():
        if child.kind != ci.CursorKind.UNEXPOSED_ATTR:
            continue
        toks = [t.spelling for t in child.get_tokens()]
        if "guarded_by" in toks:
            ids = [t for t in toks
                   if t not in ("guarded_by", "(", ")", ",")]
            if ids:
                return ids[0]
    return None


def _augment_symbols(tu: TranslationUnit, cursor, rel: str) -> None:
    """Overlays clang's class/field/function facts onto the internal
    symbol table. Clang wins on type spellings; internal entries with no
    clang counterpart are kept."""
    import clang.cindex as ci
    for c in cursor.walk_preorder():
        if c.location.file is None:
            continue
        if c.kind in (ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL) \
                and c.is_definition():
            cls = tu.symbols.classes.setdefault(
                c.spelling, ClassInfo(c.spelling, c.location.line))
            for m in c.get_children():
                if m.kind != ci.CursorKind.FIELD_DECL:
                    continue
                guard = _guarded_by_of(m)
                prev = cls.fields.get(m.spelling)
                cls.fields[m.spelling] = FieldInfo(
                    m.spelling, m.type.spelling, m.location.line,
                    guard if guard is not None
                    else (prev.guarded_by if prev else None))
                if "unordered_" in m.type.spelling:
                    tu.symbols.unordered_names = frozenset(
                        set(tu.symbols.unordered_names) | {m.spelling})
        elif c.kind in (ci.CursorKind.CXX_METHOD,
                        ci.CursorKind.FUNCTION_DECL):
            for fn in tu.symbols.functions.get(c.spelling, []):
                clang_params = list(c.get_arguments())
                if len(clang_params) != len(fn.params):
                    continue
                fn.params[:] = [
                    Param(p.type.spelling, p.spelling or old.name)
                    for p, old in zip(clang_params, fn.params)]
    tu.symbols.source = "clang"


# --- statement trees from clang cursors --------------------------------------
#
# Statements are rebuilt bottom-up from cursor kinds; every head token is
# converted to a lexer Token (keywords lex as 'id', exactly like
# tools/analysis/lexer.py) so the rules' token pattern-matching behaves
# identically under either frontend.


def _convert_tokens(cursor) -> List[Token]:
    """Cursor extent tokens -> lexer Tokens. Comments are dropped;
    preprocessor lines (a '#' opening a physical line) are skipped whole,
    mirroring the internal lexer."""
    import clang.cindex as ci
    out: List[Token] = []
    skip_line = -1
    prev_line = -1
    for t in cursor.get_tokens():
        line = t.location.line
        if t.kind == ci.TokenKind.COMMENT:
            continue
        if line == skip_line:
            continue
        if t.spelling == "#" and line != prev_line:
            skip_line = line
            continue
        prev_line = line
        if t.kind == ci.TokenKind.IDENTIFIER or \
                t.kind == ci.TokenKind.KEYWORD:
            kind = "id"
        elif t.kind == ci.TokenKind.LITERAL:
            s = t.spelling
            core = s.lstrip("uUL8R")
            if core.startswith('"'):
                kind = "str"
            elif core.startswith("'"):
                kind = "chr"
            else:
                kind = "num"
        else:
            kind = "op"
        out.append(Token(kind, t.spelling, line))
    return out


def _with_semi(toks: List[Token]) -> List[Token]:
    """Appends the terminating ';' the internal parser keeps in statement
    heads when clang's extent stopped short of it."""
    if toks and not _is(toks[-1], "op", ";"):
        return toks + [Token("op", ";", toks[-1].line)]
    return toks


def _paren_interior(toks: List[Token], start: int = 0) -> List[Token]:
    """Tokens strictly inside the first '(' ... matching ')' at/after
    start; empty when there is none."""
    for k in range(start, len(toks)):
        if _is(toks[k], "op", "("):
            close = _matching(toks, k, "(", ")")
            if close < len(toks):
                return list(toks[k + 1:close])
            break
    return []


def _opaque(toks: List[Token], line: int) -> List[Stmt]:
    """The internal parser's view of anything it cannot structure: one
    generic statement classified as decl-or-expr. Used both for plain
    expression statements and for macro-spelled statements where clang
    sees the expansion but the token stream spells a call."""
    toks = _with_semi(toks)
    if not toks:
        return []
    stmt = internal_parser._classify_simple(toks)
    stmt.line = line if line else stmt.line
    return [stmt]


def _keyword_of(kind) -> Optional[str]:
    """Leading keyword a statement cursor must spell in source; when the
    first token differs the statement came from a macro expansion and the
    internal parser saw an opaque call instead."""
    import clang.cindex as ci
    return {
        ci.CursorKind.IF_STMT: "if",
        ci.CursorKind.WHILE_STMT: "while",
        ci.CursorKind.DO_STMT: "do",
        ci.CursorKind.FOR_STMT: "for",
        ci.CursorKind.CXX_FOR_RANGE_STMT: "for",
        ci.CursorKind.SWITCH_STMT: "switch",
        ci.CursorKind.RETURN_STMT: "return",
        ci.CursorKind.BREAK_STMT: "break",
        ci.CursorKind.CONTINUE_STMT: "continue",
        ci.CursorKind.GOTO_STMT: "goto",
        ci.CursorKind.CXX_TRY_STMT: "try",
    }.get(kind)


def _body_block(cursor) -> Block:
    """A control-statement body: flatten a compound body into one Block,
    wrap a single statement in a Block (internal _parse_body_or_stmt)."""
    import clang.cindex as ci
    if cursor is None:
        return Block()
    if cursor.kind == ci.CursorKind.COMPOUND_STMT:
        return _block_of(cursor)
    blk = Block()
    blk.stmts.extend(_build_stmt(cursor))
    return blk


def _block_of(cursor) -> Block:
    """Block from a COMPOUND_STMT's children. Statements that share one
    extent start (several statements expanded from one macro invocation)
    collapse to a single opaque statement, matching the internal view."""
    blk = Block()
    seen_offsets = set()
    for child in cursor.get_children():
        off = child.extent.start.offset
        if off in seen_offsets:
            continue
        seen_offsets.add(off)
        blk.stmts.extend(_build_stmt(child))
    return blk


def _range_for_stmt(inner: List[Token], line: int, body: Block) -> Stmt:
    """Range-for fields from the paren interior, internal-parser style."""
    colon = None
    depth = 0
    for k, tk in enumerate(inner):
        if tk.kind == "op":
            if tk.text in "([{":
                depth += 1
            elif tk.text in ")]}":
                depth -= 1
            elif tk.text == ":" and depth == 0:
                prev = inner[k - 1] if k else None
                if not (prev is not None and prev.kind == "op"
                        and prev.text == ":"):
                    colon = k
                    break
    if colon is None:
        return Stmt("for", line, head=inner, blocks=[body])
    var_tokens = inner[:colon]
    range_expr = inner[colon + 1:]
    var_type = None
    var_name = None
    ids = [x for x in var_tokens if x.kind == "id"]
    if ids:
        var_name = ids[-1].text
        var_type = "".join(
            x.text for x in var_tokens
            if not (x.kind == "id" and x is ids[-1]))
    return Stmt("rangefor", line, head=inner, blocks=[body],
                loop_var_type=var_type, loop_var=var_name,
                range_expr=range_expr)


def _classic_for_stmt(inner: List[Token], line: int, body: Block) -> Stmt:
    semi = None
    depth = 0
    for k, tk in enumerate(inner):
        if tk.kind == "op":
            if tk.text in "([{":
                depth += 1
            elif tk.text in ")]}":
                depth -= 1
            elif tk.text == ";" and depth == 0:
                semi = k
                break
    for_init = None
    if semi is not None and semi > 0:
        for_init = internal_parser._classify_simple(inner[:semi])
    return Stmt("for", line, head=inner, blocks=[body], for_init=for_init)


def _build_stmt(cursor) -> List[Stmt]:
    """One statement cursor -> zero or more Stmt nodes (case labels
    flatten into their sub-statements; null statements vanish)."""
    import clang.cindex as ci
    kind = cursor.kind
    if kind == ci.CursorKind.NULL_STMT:
        return []
    if kind in (ci.CursorKind.CASE_STMT, ci.CursorKind.DEFAULT_STMT):
        kids = list(cursor.get_children())
        return _build_stmt(kids[-1]) if kids else []
    toks = _convert_tokens(cursor)
    if not toks:
        return []
    line = toks[0].line
    kw = _keyword_of(kind)
    if kw is not None and not _is(toks[0], "id", kw):
        # Spelled as a macro: the internal parser sees an opaque call.
        return _opaque(toks, line)
    if kind == ci.CursorKind.COMPOUND_STMT:
        if not _is(toks[0], "op", "{"):
            return _opaque(toks, line)
        return [Stmt("block", line, blocks=[_block_of(cursor)])]
    if kind == ci.CursorKind.IF_STMT:
        kids = list(cursor.get_children())
        head = _paren_interior(toks)
        blocks = [Block()]
        if len(kids) >= 2:
            blocks = [_body_block(kids[1])]
        if len(kids) >= 3:
            blocks.append(_body_block(kids[2]))
        return [Stmt("if", line, head=head, blocks=blocks)]
    if kind in (ci.CursorKind.WHILE_STMT, ci.CursorKind.SWITCH_STMT):
        kids = list(cursor.get_children())
        head = _paren_interior(toks)
        body = _body_block(kids[-1]) if kids else Block()
        name = "while" if kind == ci.CursorKind.WHILE_STMT else "switch"
        return [Stmt(name, line, head=head, blocks=[body])]
    if kind == ci.CursorKind.DO_STMT:
        kids = list(cursor.get_children())
        body = _body_block(kids[0]) if kids else Block()
        head: List[Token] = []
        depth = 0
        for k, t in enumerate(toks):
            if t.kind == "op":
                if t.text in ("{", "(", "["):
                    depth += 1
                elif t.text in ("}", ")", "]"):
                    depth -= 1
            elif depth == 0 and k > 0 and _is(t, "id", "while"):
                head = _paren_interior(toks, k)
                break
        return [Stmt("dowhile", line, head=head, blocks=[body])]
    if kind == ci.CursorKind.FOR_STMT:
        kids = list(cursor.get_children())
        inner = _paren_interior(toks)
        body = _body_block(kids[-1]) if kids else Block()
        return [_classic_for_stmt(inner, line, body)]
    if kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
        kids = list(cursor.get_children())
        inner = _paren_interior(toks)
        body = _body_block(kids[-1]) if kids else Block()
        return [_range_for_stmt(inner, line, body)]
    if kind == ci.CursorKind.RETURN_STMT:
        return [Stmt("return", line, head=_with_semi(toks)[1:])]
    if kind == ci.CursorKind.BREAK_STMT:
        return [Stmt("break", line)]
    if kind == ci.CursorKind.CONTINUE_STMT:
        return [Stmt("continue", line)]
    if kind == ci.CursorKind.CXX_TRY_STMT:
        kids = list(cursor.get_children())
        blocks = [_body_block(kids[0])] if kids else [Block()]
        for handler in kids[1:]:
            hkids = list(handler.get_children())
            blocks.append(_body_block(hkids[-1]) if hkids else Block())
        return [Stmt("try", line, blocks=blocks)]
    if kind == ci.CursorKind.DECL_STMT:
        first = toks[0].text
        if first in ("class", "struct", "enum", "union"):
            return []  # local type definition; internal parser skips it
        if first in ("using", "typedef", "static_assert"):
            return [Stmt("expr", line, head=_with_semi(toks))]
        return _opaque(toks, line)
    # Everything else — expression statements, goto/labels, and constructs
    # with no structured mapping — is the internal parser's generic
    # statement: a decl-or-expr over the raw tokens.
    return _opaque(toks, line)


def _build_bodies(tu: TranslationUnit, cursor, fs_path: Path, warn) -> int:
    """Rebuilds bodies of `tu.functions` from clang statement cursors.

    The internal function list is canonical: a clang definition is matched
    to an internal FunctionInfo by (name, line-of-name); unmatched cursors
    are ignored so clang-only visibility never changes the finding set.
    Returns the number of bodies rebuilt."""
    import clang.cindex as ci
    want = fs_path.resolve().as_posix()
    by_key = {}
    for fn in tu.functions:
        by_key.setdefault((fn.name, fn.line), fn)
    rebuilt = 0
    fn_kinds = (ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
                ci.CursorKind.FUNCTION_TEMPLATE)
    for c in cursor.walk_preorder():
        if c.kind not in fn_kinds or not c.is_definition():
            continue
        if c.location.file is None or \
                Path(c.location.file.name).resolve().as_posix() != want:
            continue
        fn = by_key.get((c.spelling, c.location.line))
        if fn is None or fn.body is None:
            continue
        body_cursor = None
        for child in c.get_children():
            if child.kind == ci.CursorKind.COMPOUND_STMT:
                body_cursor = child
        if body_cursor is None:
            continue
        try:
            fn.body = _block_of(body_cursor)
            rebuilt += 1
        except Exception as e:
            if warn:
                warn(f"{tu.rel}: clang body rebuild failed for "
                     f"{fn.qualname} ({e}); keeping internal body")
    return rebuilt


def load_tu(fs_path: Path, rel: str, root: Path,
            warn=None) -> TranslationUnit:
    """Internal-parse `fs_path`, then overlay clang symbol facts and
    rebuild function bodies from clang statement cursors.

    Falls back to the plain internal TU (with a warning via `warn`) on any
    clang failure; never raises for clang's sake."""
    tu = internal_parser.load_tu(fs_path, rel)
    ok, detail = clang_available()
    if not ok:
        if warn:
            warn(f"{rel}: clang frontend unavailable ({detail}); "
                 "using internal frontend")
        return tu
    try:
        import clang.cindex as ci
        index = ci.Index.create()
        unit = index.parse(str(fs_path), args=_compile_args(root, fs_path))
        fatal = [d for d in unit.diagnostics if d.severity >= 4]
        if fatal:
            raise RuntimeError(fatal[0].spelling)
        _augment_symbols(tu, unit.cursor, rel)
        _build_bodies(tu, unit.cursor, fs_path, warn)
        tu.frontend = "clang"
    except Exception as e:
        if warn:
            warn(f"{rel}: clang parse failed ({e}); "
                 "using internal frontend")
    return tu
