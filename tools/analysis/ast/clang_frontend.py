"""Optional libclang frontend.

When `clang.cindex` + a loadable libclang are present, this frontend
augments the internal parser's symbol tables with clang's full-fidelity
view: canonical field/parameter types, `guarded_by` attributes recovered
from the expanded `LL_GUARDED_BY` macro, and cross-file class layouts via
`compile_commands.json` include paths. Statement trees always come from
the internal parser — clang only upgrades the *type facts* the rules
consult, so both frontends walk identical CFG-lite structure and fixture
counts stay frontend-independent.

Everything here is defensive: any clang failure (missing library, parse
error, ABI mismatch) degrades to the internal TU with a one-line warning.
The analyzer never hard-fails because libclang is absent — that mirrors
tools/run_clang_tidy.sh, which exits 0 with a loud skip.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple

from .astmodel import ClassInfo, FieldInfo, Param, TranslationUnit
from . import parser as internal_parser

_probe_result: Optional[Tuple[bool, str]] = None


def clang_available() -> Tuple[bool, str]:
    """(available, detail). Cached: probing libclang loads a shared lib."""
    global _probe_result
    if _probe_result is not None:
        return _probe_result
    try:
        import clang.cindex as ci  # noqa: F401
    except ImportError as e:
        _probe_result = (False, f"python clang bindings missing ({e})")
        return _probe_result
    try:
        ci.Index.create()
    except Exception as e:  # libclang .so missing or ABI mismatch
        _probe_result = (False, f"libclang not loadable ({e})")
        return _probe_result
    _probe_result = (True, "libclang loaded")
    return _probe_result


def _compile_args(root: Path, fs_path: Path) -> List[str]:
    """Best-effort args for `fs_path` from build/compile_commands.json."""
    db = root / "build" / "compile_commands.json"
    if not db.is_file():
        return ["-std=c++17", f"-I{root / 'src'}"]
    try:
        entries = json.loads(db.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return ["-std=c++17", f"-I{root / 'src'}"]
    want = fs_path.resolve().as_posix()
    for entry in entries:
        ef = Path(entry.get("directory", "."), entry.get("file", ""))
        if ef.resolve().as_posix() != want:
            continue
        args = entry.get("arguments") or entry.get("command", "").split()
        keep: List[str] = []
        it = iter(args[1:])  # drop the compiler itself
        for a in it:
            if a in ("-c", "-o"):
                next(it, None)
                continue
            if a.endswith((".cc", ".cpp", ".cxx", ".o")):
                continue
            keep.append(a)
        return keep
    return ["-std=c++17", f"-I{root / 'src'}"]


def _guarded_by_of(cursor) -> Optional[str]:
    """Mutex name from a guarded_by attribute child, if any."""
    import clang.cindex as ci
    for child in cursor.get_children():
        if child.kind != ci.CursorKind.UNEXPOSED_ATTR:
            continue
        toks = [t.spelling for t in child.get_tokens()]
        if "guarded_by" in toks:
            ids = [t for t in toks
                   if t not in ("guarded_by", "(", ")", ",")]
            if ids:
                return ids[0]
    return None


def _augment_symbols(tu: TranslationUnit, cursor, rel: str) -> None:
    """Overlays clang's class/field/function facts onto the internal
    symbol table. Clang wins on type spellings; internal entries with no
    clang counterpart are kept."""
    import clang.cindex as ci
    for c in cursor.walk_preorder():
        if c.location.file is None:
            continue
        if c.kind in (ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL) \
                and c.is_definition():
            cls = tu.symbols.classes.setdefault(
                c.spelling, ClassInfo(c.spelling, c.location.line))
            for m in c.get_children():
                if m.kind != ci.CursorKind.FIELD_DECL:
                    continue
                guard = _guarded_by_of(m)
                prev = cls.fields.get(m.spelling)
                cls.fields[m.spelling] = FieldInfo(
                    m.spelling, m.type.spelling, m.location.line,
                    guard if guard is not None
                    else (prev.guarded_by if prev else None))
                if "unordered_" in m.type.spelling:
                    tu.symbols.unordered_names = frozenset(
                        set(tu.symbols.unordered_names) | {m.spelling})
        elif c.kind in (ci.CursorKind.CXX_METHOD,
                        ci.CursorKind.FUNCTION_DECL):
            for fn in tu.symbols.functions.get(c.spelling, []):
                clang_params = list(c.get_arguments())
                if len(clang_params) != len(fn.params):
                    continue
                fn.params[:] = [
                    Param(p.type.spelling, p.spelling or old.name)
                    for p, old in zip(clang_params, fn.params)]
    tu.symbols.source = "clang"


def load_tu(fs_path: Path, rel: str, root: Path,
            warn=None) -> TranslationUnit:
    """Internal-parse `fs_path`, then overlay clang symbol facts.

    Falls back to the plain internal TU (with a warning via `warn`) on any
    clang failure; never raises for clang's sake."""
    tu = internal_parser.load_tu(fs_path, rel)
    ok, detail = clang_available()
    if not ok:
        if warn:
            warn(f"{rel}: clang frontend unavailable ({detail}); "
                 "using internal frontend")
        return tu
    try:
        import clang.cindex as ci
        index = ci.Index.create()
        unit = index.parse(str(fs_path), args=_compile_args(root, fs_path))
        fatal = [d for d in unit.diagnostics if d.severity >= 4]
        if fatal:
            raise RuntimeError(fatal[0].spelling)
        _augment_symbols(tu, unit.cursor, rel)
        tu.frontend = "clang"
    except Exception as e:
        if warn:
            warn(f"{rel}: clang parse failed ({e}); "
                 "using internal frontend")
    return tu
