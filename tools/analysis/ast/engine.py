"""AST-layer engine: frontend selection, suppressions, reporting.

Shares the token engine's finding format, `--json` report shape, exit
codes (0 clean, 1 findings, 2 config error), `ll-analysis: allow(...)`
suppression syntax, and allowlist format — a suppression written for a
token rule and one written for an AST rule are indistinguishable to the
reader, and either engine validates rule names against the union of both
layers' rules so cross-layer comments never hard-error.

Frontend selection (`--frontend auto|internal|clang`):

  internal  pure-Python parser; always available; what the selftest pins.
  clang     libclang symbol augmentation; requested explicitly. When
            libclang is missing the CLI prints a loud skip and exits 0
            (mirroring tools/run_clang_tidy.sh) so a CI leg that installs
            libclang conditionally stays green either way.
  auto      clang when loadable, else internal with a one-line warning.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine import (
    AnalysisError, AnalysisResult, Finding, _allowlist_match,
    _check_allowed, _iter_source_files, _load_allowlist,
    _parse_suppressions, check_stale_allowlist, repo_root,
)
from ..lexer import tokenize
from . import clang_frontend
from . import parser as internal_parser
from .rules import AST_RULES, AST_RULES_BY_NAME, ASTRule

FRONTENDS = ("auto", "internal", "clang")


def known_rule_names() -> Set[str]:
    """Union of token-, AST-, and IPA-layer rule names, for suppression
    and allowlist validation on any engine."""
    from ..engine import _known_rule_names
    return _known_rule_names() | set(AST_RULES_BY_NAME)


def _load_file_tu(fs_path: Path, rel: str, root: Path, frontend: str,
                  warnings: List[str]):
    if frontend == "clang" or frontend == "auto":
        ok, _detail = clang_frontend.clang_available()
        if ok or frontend == "clang":
            return clang_frontend.load_tu(
                fs_path, rel, root, warn=warnings.append)
        if not warnings:  # one-line note, not per-file spam
            warnings.append(
                f"clang frontend unavailable ({_detail}); "
                "using internal frontend")
    return internal_parser.load_tu(fs_path, rel)


def analyze_file_ast(
    fs_path: Path, rel: str, rules: Sequence[ASTRule], root: Path,
    frontend: str, warnings: List[str],
    suppressed_by_rule: Optional[Dict[str, int]] = None,
    rule_elapsed: Optional[Dict[str, float]] = None,
) -> Tuple[List[Finding], int]:
    text = fs_path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    tokens, comments = tokenize(text)
    suppressions = _parse_suppressions(
        comments, tokens, rel, known_rule_names())
    tu = _load_file_tu(fs_path, rel, root, frontend, warnings)
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies_to(rel):
            continue
        started = time.monotonic()
        hits = list(rule.check(tu))
        if rule_elapsed is not None:
            rule_elapsed[rule.name] = (
                rule_elapsed.get(rule.name, 0.0)
                + (time.monotonic() - started))
        for line, message in hits:
            if (line, rule.name) in suppressions:
                suppressed += 1
                if suppressed_by_rule is not None:
                    suppressed_by_rule[rule.name] = \
                        suppressed_by_rule.get(rule.name, 0) + 1
                continue
            snippet = lines[line - 1].strip() if 0 < line <= len(lines) \
                else ""
            findings.append(Finding(rel, line, rule.name, message, snippet))
    return findings, suppressed


def analyze_paths_ast(
    paths: Sequence[str],
    rules: Optional[Sequence[ASTRule]] = None,
    root: Optional[Path] = None,
    allowlist: Optional[Path] = None,
    frontend: str = "auto",
    warnings: Optional[List[str]] = None,
) -> AnalysisResult:
    if frontend not in FRONTENDS:
        raise AnalysisError(f"unknown frontend '{frontend}' "
                            f"(expected one of {', '.join(FRONTENDS)})")
    root = (root or repo_root()).resolve()
    rules = list(rules) if rules is not None else list(AST_RULES)
    entries = _load_allowlist(allowlist) if allowlist else []
    warnings = warnings if warnings is not None else []
    findings: List[Finding] = []
    used_entries: Set[int] = set()
    suppressed = 0
    suppressed_by_rule: Dict[str, int] = {}
    rule_elapsed: Dict[str, float] = {}
    scanned_files: List[Tuple[str, Path]] = []
    for arg in paths:
        p = Path(arg)
        if not p.exists():
            raise AnalysisError(f"no such path: {arg}")
        _check_allowed(root, p)
        for f in _iter_source_files(root, p):
            try:
                rel = f.resolve().relative_to(root).as_posix()
            except ValueError:
                rel = f.as_posix()
            file_findings, file_suppressed = analyze_file_ast(
                f, rel, rules, root, frontend, warnings,
                suppressed_by_rule, rule_elapsed)
            scanned_files.append((rel, f))
            suppressed += file_suppressed
            for finding in file_findings:
                k = _allowlist_match(finding, entries)
                if k is not None:
                    used_entries.add(k)
                    suppressed += 1
                    suppressed_by_rule[finding.rule] = \
                        suppressed_by_rule.get(finding.rule, 0) + 1
                else:
                    findings.append(finding)
    check_stale_allowlist(entries, used_entries, {r.name for r in rules},
                          scanned_files)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return AnalysisResult(findings, suppressed, len(scanned_files),
                          suppressed_by_rule, rule_elapsed)


def main(argv: Sequence[str]) -> int:
    args = list(argv[1:])
    json_out: Optional[Path] = None
    rule_filter: Optional[List[ASTRule]] = None
    allowlist: Optional[Path] = None
    frontend = "auto"
    budget_s: Optional[float] = None
    paths: List[str] = []
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--json":
            i += 1
            if i >= len(args):
                print("--json needs a file argument", file=sys.stderr)
                return 2
            json_out = Path(args[i])
        elif a == "--rules":
            i += 1
            if i >= len(args):
                print("--rules needs a comma-separated list",
                      file=sys.stderr)
                return 2
            names = [x.strip() for x in args[i].split(",") if x.strip()]
            unknown = [x for x in names if x not in AST_RULES_BY_NAME]
            if unknown:
                print(f"unknown rule(s): {', '.join(unknown)}",
                      file=sys.stderr)
                return 2
            rule_filter = [AST_RULES_BY_NAME[x] for x in names]
        elif a == "--frontend":
            i += 1
            if i >= len(args) or args[i] not in FRONTENDS:
                print(f"--frontend needs one of: {', '.join(FRONTENDS)}",
                      file=sys.stderr)
                return 2
            frontend = args[i]
        elif a == "--allowlist":
            i += 1
            if i >= len(args):
                print("--allowlist needs a file argument", file=sys.stderr)
                return 2
            allowlist = Path(args[i])
        elif a == "--budget-seconds":
            i += 1
            try:
                budget_s = float(args[i])
            except (IndexError, ValueError):
                print("--budget-seconds needs a number", file=sys.stderr)
                return 2
        elif a == "--list-rules":
            for r in AST_RULES:
                print(f"{r.name}: {r.doc}")
            return 0
        elif a in ("-h", "--help"):
            print(__doc__)
            print("usage: run_ast_analysis.py [--json OUT] [--rules a,b] "
                  "[--frontend auto|internal|clang] [--allowlist FILE] "
                  "[--budget-seconds N] PATH...")
            return 0
        elif a.startswith("-"):
            print(f"unknown option: {a}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
        i += 1
    if not paths:
        print("usage: run_ast_analysis.py [--json OUT] PATH...",
              file=sys.stderr)
        return 2
    if frontend == "clang":
        ok, detail = clang_frontend.clang_available()
        if not ok:
            # Loud skip, success exit: mirrors run_clang_tidy.sh so CI legs
            # that install libclang conditionally stay green without it.
            print(f"SKIP: ast-analysis clang frontend unavailable: {detail}",
                  file=sys.stderr)
            print("SKIP: install libclang + python3-clang to run this leg; "
                  "the internal frontend still gates via "
                  "`--frontend internal`", file=sys.stderr)
            return 0
    started = time.monotonic()
    warnings: List[str] = []
    try:
        result = analyze_paths_ast(
            paths, rules=rule_filter, allowlist=allowlist,
            frontend=frontend, warnings=warnings)
    except AnalysisError as e:
        print(f"analysis error: {e}", file=sys.stderr)
        return 2
    elapsed = time.monotonic() - started
    for w in warnings:
        print(f"warning: {w}", file=sys.stderr)
    for f in result.findings:
        print(f.render())
    if json_out is not None:
        payload = result.to_json()
        payload["layer"] = "ast"
        payload["frontend"] = frontend
        payload["elapsed_seconds"] = round(elapsed, 3)
        json_out.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"ast-analysis[{frontend}]: {len(result.findings)} finding(s), "
        f"{result.suppressed} suppressed, "
        f"{result.files_scanned} file(s) scanned in {elapsed:.1f}s",
        file=sys.stderr)
    if budget_s is not None and elapsed > budget_s:
        print(f"analysis error: wall-clock budget exceeded "
              f"({elapsed:.1f}s > {budget_s:.1f}s)", file=sys.stderr)
        return 2
    return 1 if result.findings else 0
