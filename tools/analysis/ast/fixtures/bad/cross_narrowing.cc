// Fixture: cross-function-narrowing-time-arith must fire on each flow.
#include <cstdint>

namespace fixture {

void set_deadline(std::uint32_t deadline_us);

std::uint32_t to_slot(std::int64_t now_us) {
  // 1: a 64-bit time value narrowed through the return.
  return now_us / 1000;
}

void arm(std::int64_t now_us) {
  // 2: a 64-bit time value narrowed into a 32-bit parameter.
  set_deadline(now_us);
}

void late_assign(std::int64_t largest_acked) {
  std::uint32_t slot = 0;
  // 3: a packet number narrowed through a later assignment.
  slot = largest_acked % 4096;
  (void)slot;
}

}  // namespace fixture
