// Fixture: guarded-field-alias must fire on each alias escape below.
#include <vector>

#include "util/mutex.h"

namespace fixture {

class Registry {
 public:
  std::vector<int>& rows();
  void unlocked_alias();
  void escaped_scope();

 private:
  util::Mutex mu_;
  std::vector<int> rows_ LL_GUARDED_BY(mu_);
};

std::vector<int>& Registry::rows() {
  util::MutexLock lock(mu_);
  // 1: returning a reference to a guarded field outlives the lock.
  return rows_;
}

void Registry::unlocked_alias() {
  // 2: alias taken with no lock held at all.
  auto& r = rows_;
  r.push_back(1);
}

void Registry::escaped_scope() {
  std::vector<int>* p = nullptr;
  {
    util::MutexLock lock(mu_);
    p = &rows_;
    p->push_back(1);
  }
  // 3: the alias outlived the MutexLock scope that made it safe.
  p->push_back(2);
}

}  // namespace fixture
