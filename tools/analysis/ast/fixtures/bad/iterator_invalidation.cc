// Fixture: iterator-invalidation must fire on each stale use below.
#include <map>
#include <vector>

namespace fixture {

int use_after_push(std::vector<int>& v) {
  auto it = v.begin();
  v.push_back(1);
  // 1: `it` was invalidated by the push_back above.
  return *it;
}

void erase_in_rangefor(std::map<int, int>& m) {
  for (auto& kv : m) {
    // 2: mutating the iterated container invalidates the hidden iterators.
    if (kv.second == 0) m.erase(kv.first);
  }
}

void erase_without_rebind(std::vector<int>& v) {
  auto it = v.begin();
  while (it != v.end()) {
    // 3: erase without rebinding, then the loop re-tests the dead iterator.
    if (*it == 0) v.erase(it);
    ++it;
  }
}

int reference_after_clear(std::vector<int>& v) {
  int& r = v.back();
  v.clear();
  // 4: the reference dangles once the container was cleared.
  return r;
}

}  // namespace fixture
