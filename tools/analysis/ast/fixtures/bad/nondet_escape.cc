// Fixture: nondeterministic-iteration-escape must fire on each emit below.
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

void stream_escape(const std::unordered_map<int, int>& flows,
                   std::ostream& os) {
  for (const auto& kv : flows) {
    // 1: unordered iteration order flows into the output stream.
    os << kv.first << "," << kv.second << "\n";
  }
}

std::vector<int> vector_escape(const std::unordered_map<int, int>& flows) {
  std::vector<int> out;
  for (const auto& kv : flows) {
    // 2: append order equals the (nondeterministic) iteration order.
    out.push_back(kv.second);
  }
  return out;
}

std::string string_escape(const std::unordered_map<int, int>& flows) {
  std::string report;
  for (const auto& kv : flows) {
    // 3: concatenation order equals the iteration order.
    report += std::to_string(kv.second);
  }
  return report;
}

}  // namespace fixture
