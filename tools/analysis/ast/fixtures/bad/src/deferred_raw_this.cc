// Fixture: deferred-raw-this must fire on every raw-`this` escape below.
// Lives under a src/ component because the rule is scoped to src/.
#include <utility>

namespace fixture {

class Connection {
 public:
  void send();
  void arm();
  void chain();
  void lateral();

 private:
  void on_sent();
  void tick();
  Simulator& sim_;
  int inflight_ = 0;
};

void Connection::send() {
  // 1: plain raw `this` capture into a deferred call.
  sim_.schedule(cost, [this] { on_sent(); });
}

void Connection::arm() {
  // 2: default &-capture in a member function implies raw `this`.
  sim_.schedule_at(when, [&] { tick(); });
}

void Connection::chain() {
  // 3: a local lambda that captures raw `this`, escaping via post().
  auto cb = [this] { tick(); };
  sim_.post(std::move(cb));
}

void Connection::lateral() {
  // 4: capturing a member by reference aliases `this` just the same.
  sim_.schedule(cost, [&inflight_] { ++inflight_; });
}

}  // namespace fixture
