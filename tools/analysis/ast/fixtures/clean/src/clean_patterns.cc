// Fixture: safe counterparts of every bad pattern. Zero findings expected.
#include <algorithm>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/mutex.h"

namespace fixture {

class Connection {
 public:
  void send();
  void detach();

 private:
  void on_sent();
  Simulator& sim_;
  std::shared_ptr<char> live_token_ = std::make_shared<char>(0);
};

void Connection::send() {
  // Weak live-token guard: the PR 1 idiom the rule asks for.
  sim_.schedule(cost, [this, token = std::weak_ptr<char>(live_token_)] {
    if (token.expired()) return;
    on_sent();
  });
}

void Connection::detach() {
  // A shared self keepalive is also fine.
  auto self = shared_from_this();
  sim_.post([self] { self->close(); });
}

int rebind_erase(std::vector<int>& v) {
  auto it = v.begin();
  while (it != v.end()) {
    if (*it == 0) {
      it = v.erase(it);  // rebinding revalidates the iterator
    } else {
      ++it;
    }
  }
  return static_cast<int>(v.size());
}

void collect_then_mutate(std::map<int, int>& m) {
  std::vector<int> doomed;
  for (const auto& kv : m) {
    if (kv.second == 0) doomed.push_back(kv.first);
  }
  for (int k : doomed) m.erase(k);
}

class Registry {
 public:
  std::vector<int> snapshot() const;

 private:
  util::Mutex mu_;
  std::vector<int> rows_ LL_GUARDED_BY(mu_);
};

std::vector<int> Registry::snapshot() const {
  util::MutexLock lock(mu_);
  return rows_;  // by-value copy, no alias escapes the lock
}

void widen_properly(std::int64_t now_us) {
  std::int64_t deadline_us = now_us + 5000;
  (void)deadline_us;
}

void sorted_escape(const std::unordered_map<int, int>& flows,
                   std::ostream& os) {
  // Sorted snapshot before emitting: order is deterministic.
  std::map<int, int> sorted(flows.begin(), flows.end());
  for (const auto& kv : sorted) {
    os << kv.first << "," << kv.second << "\n";
  }
}

int accumulate_ok(const std::unordered_map<int, int>& flows) {
  int total = 0;
  for (const auto& kv : flows) {
    total += kv.second;  // numeric accumulation is order-insensitive
  }
  return total;
}

}  // namespace fixture
