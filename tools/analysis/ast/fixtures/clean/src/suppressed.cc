// Fixture: justified suppressions. Zero findings, exactly 5 suppressed.
#include <vector>

#include "util/mutex.h"

namespace fixture {

class Owner {
 public:
  void arm();
  void arm_multiline();
  void arm_past_macro();

 private:
  void fire();
  Simulator& sim_;
};

void Owner::arm() {
  // ll-analysis: allow(deferred-raw-this) ~Owner() cancels the event.
  sim_.schedule(delay, [this] { fire(); });
}

void Owner::arm_multiline() {
  // The suppression must cover the whole multi-line statement below.
  // ll-analysis: allow(deferred-raw-this) ~Owner() cancels the event.
  sim_.schedule(delay,
                [this] {
                  fire();
                });
}

class Table {
 public:
  std::vector<int>& rows() {
    util::MutexLock lock(mu_);
    // ll-analysis: allow(guarded-field-alias) quiesced-reader contract.
    return rows_;
  }

 private:
  util::Mutex mu_;
  std::vector<int> rows_ LL_GUARDED_BY(mu_);
};

void Owner::arm_past_macro() {
  // Preprocessor directives produce no tokens, so the suppression's
  // scope must jump the #define and still cover the statement below.
  // ll-analysis: allow(deferred-raw-this) ~Owner() cancels the event.
#define LL_FIXTURE_DELAY delay
  sim_.schedule(LL_FIXTURE_DELAY, [this] { fire(); });
#undef LL_FIXTURE_DELAY
}

int last_line_case(std::vector<int>& v) {
  auto it = v.begin();
  v.push_back(1);
  // A suppression on the last code line of a file must still parse and
  // cover its own statement.
  // ll-analysis: allow(iterator-invalidation) fixture exercises EOF scope.
  return *it;
}

}  // namespace fixture
