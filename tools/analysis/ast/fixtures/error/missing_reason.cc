// Fixture: a suppression without a reason is a hard error (exit 2).
void f() {
  // ll-analysis: allow(deferred-raw-this)
  int x = 0;
  (void)x;
}
