// Fixture: an unknown rule name inside allow() is a hard error (exit 2).
void f() {
  // ll-analysis: allow(no-such-rule) this must be rejected loudly.
  int x = 0;
  (void)x;
}
