// Regression fixture: reconstruction of the PR 1 deferred-callback
// use-after-free. QuicConnection::maybe_send_ack() deferred the ACK's
// emission by its userspace bookkeeping cost, capturing raw `this`; a
// connection torn down during that window left a dangling `this` on the
// simulator event queue. Expected: deferred-raw-this fires once.
#include <utility>

#include "sim/simulator.h"

namespace fixture {

class QuicConnection {
 public:
  void maybe_send_ack();

 private:
  void send_quic_packet(QuicPacket&& pkt);
  Simulator& sim_;
};

void QuicConnection::maybe_send_ack() {
  QuicPacket pkt;
  const Duration cost = ack_emission_cost();
  // BUG (as shipped): raw `this` rides the event queue past teardown.
  sim_.schedule(cost, [this, p = std::move(pkt)]() mutable {
    send_quic_packet(std::move(p));
  });
}

}  // namespace fixture
