// Regression fixture: reconstruction of the PR 2 stream-limit bug.
// Applying a tightened MAX_STREAMS limit erased over-limit streams while
// range-for iterating the stream map, invalidating the loop's hidden
// iterators mid-walk. Expected: iterator-invalidation fires once.
#include <cstdint>
#include <map>
#include <memory>

namespace fixture {

class QuicConnection {
 public:
  void apply_stream_limit(std::uint64_t max_streams);

 private:
  std::map<std::uint64_t, std::unique_ptr<Stream>> streams_;
};

void QuicConnection::apply_stream_limit(std::uint64_t max_streams) {
  // BUG (as shipped): erase mutates streams_ under its own range-for.
  for (const auto& [id, s] : streams_) {
    if (id >= max_streams) streams_.erase(id);
  }
}

}  // namespace fixture
