// Regression fixture: the PR 1 deferred-callback use-after-free after the
// historical fix — the lambda carries a weak live-token and bails out when
// the connection is gone. Expected: zero findings.
#include <memory>
#include <utility>

#include "sim/simulator.h"

namespace fixture {

class QuicConnection {
 public:
  void maybe_send_ack();

 private:
  void send_quic_packet(QuicPacket&& pkt);
  Simulator& sim_;
  std::shared_ptr<char> live_token_ = std::make_shared<char>(0);
};

void QuicConnection::maybe_send_ack() {
  QuicPacket pkt;
  const Duration cost = ack_emission_cost();
  // FIXED: weak live-token guard; teardown expires the token.
  sim_.schedule(cost, [this, p = std::move(pkt),
                       token = std::weak_ptr<char>(live_token_)]() mutable {
    if (token.expired()) return;
    send_quic_packet(std::move(p));
  });
}

}  // namespace fixture
