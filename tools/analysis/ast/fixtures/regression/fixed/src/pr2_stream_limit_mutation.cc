// Regression fixture: the PR 2 stream-limit bug after the historical fix —
// collect the doomed stream ids first, then erase outside the iteration.
// Expected: zero findings.
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace fixture {

class QuicConnection {
 public:
  void apply_stream_limit(std::uint64_t max_streams);

 private:
  std::map<std::uint64_t, std::unique_ptr<Stream>> streams_;
};

void QuicConnection::apply_stream_limit(std::uint64_t max_streams) {
  // FIXED: collect-then-mutate keeps the range-for's iterators valid.
  std::vector<std::uint64_t> doomed;
  for (const auto& [id, s] : streams_) {
    if (id >= max_streams) doomed.push_back(id);
  }
  for (std::uint64_t id : doomed) streams_.erase(id);
}

}  // namespace fixture
