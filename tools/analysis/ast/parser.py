"""Internal frontend: token stream -> astmodel translation unit.

A structural C++ parser built on tools/analysis/lexer.py. It does not try
to be a compiler: types are token text, expressions stay token slices, and
anything it cannot classify becomes an opaque 'expr' statement — rules
degrade to silence on unparsed constructs, never to crashes or false
positives. What it does recover, reliably enough for the five flow rules:

  * function definitions (free, qualified out-of-line, inline methods,
    ctor-init lists, trailing return types) with nested statement trees;
  * statement kinds and ordering inside bodies, including loop heads
    (classic + range-for), if/else chains, and brace scopes;
  * local declarations (type text, name, initializer token slice);
  * class bodies: fields with LL_GUARDED_BY annotations, mutex members;
  * member function *declarations* (for the cross-function signature
    table) in addition to definitions.

The loader pairs `foo.cc` with a sibling `foo.h` so method bodies in the
.cc see the class's field table — the single-file idiom this repo uses
everywhere.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple

from ..lexer import Token, tokenize
from ..rules import (
    _at, _class_bodies, _close_angle, _is, _is_mutex_statement, _matching,
    _member_statements, _unordered_decls,
)
from .astmodel import (
    Block, ClassInfo, FieldInfo, FunctionInfo, Param, Stmt, SymbolTable,
    TranslationUnit,
)

_CONTROL_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "do", "else", "case", "default", "new", "delete", "throw", "goto",
    "static_assert", "decltype", "alignas", "noexcept", "operator",
})

_DECL_QUALIFIERS = frozenset({
    "const", "static", "constexpr", "thread_local", "mutable", "inline",
    "volatile", "register", "extern", "typename",
})

_FN_TAIL_QUALIFIERS = frozenset({
    "const", "noexcept", "override", "final", "mutable", "volatile",
    "throw", "LL_REQUIRES", "LL_EXCLUDES", "LL_NO_THREAD_SAFETY_ANALYSIS",
})


def split_commas(tokens: List[Token]) -> List[List[Token]]:
    """Splits at top-level commas, tracking (), [], {} and template <>."""
    parts: List[List[Token]] = [[]]
    depth = 0
    angle = 0
    for i, t in enumerate(tokens):
        if t.kind == "op":
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == "<" and i > 0 and tokens[i - 1].kind == "id":
                angle += 1
            elif t.text == ">" and angle > 0:
                angle -= 1
            elif t.text == ">>" and angle > 0:
                angle = max(0, angle - 2)
            elif t.text == "," and depth == 0 and angle == 0:
                parts.append([])
                continue
        parts[-1].append(t)
    return [p for p in parts if p]


# --- declaration parsing -----------------------------------------------------


def _parse_type(tokens: List[Token], i: int) -> Optional[Tuple[str, int]]:
    """Parses a type-id at i: qualifiers, id chains with ::, template args,
    and */&/&& suffixes. Returns (joined_text, next_index) or None."""
    parts: List[str] = []
    n = len(tokens)
    while i < n and _is(tokens[i], "id") and tokens[i].text in _DECL_QUALIFIERS:
        parts.append(tokens[i].text)
        i += 1
    t = _at(tokens, i)
    if not _is(t, "id") or t.text in _CONTROL_KEYWORDS:
        return None
    if t.text in ("unsigned", "signed"):
        parts.append(t.text)
        i += 1
        while _is(_at(tokens, i), "id") and tokens[i].text in (
            "char", "short", "int", "long"
        ):
            parts.append(tokens[i].text)
            i += 1
    else:
        # id (:: id)* with optional one template-argument list per segment.
        parts.append(t.text)
        i += 1
        while True:
            if _is(_at(tokens, i), "op", "<"):
                close = _close_angle(tokens, i)
                if close >= len(tokens) or not _is(tokens[close], "op") or \
                        tokens[close].text not in (">", ">>"):
                    return None
                parts.append("<" + "".join(
                    x.text for x in tokens[i + 1:close]) + ">")
                i = close + 1
            if _is(_at(tokens, i), "op", "::") and _is(
                _at(tokens, i + 1), "id"
            ):
                parts.append("::" + tokens[i + 1].text)
                i += 2
                continue
            break
        # `long long` / `long int` style multi-word builtins.
        while parts[-1] in ("long",) and _is(_at(tokens, i), "id") and \
                tokens[i].text in ("long", "int", "double"):
            parts.append(tokens[i].text)
            i += 1
    while _is(_at(tokens, i), "id", "const"):
        parts.append("const")
        i += 1
    while _is(_at(tokens, i), "op") and tokens[i].text in ("*", "&", "&&"):
        parts.append(tokens[i].text)
        i += 1
        while _is(_at(tokens, i), "id", "const"):
            parts.append("const")
            i += 1
    out: List[str] = []
    for p in parts:
        if out and (p.startswith("::") or p.startswith("<") or
                    p in ("*", "&", "&&")):
            out[-1] = out[-1] + p
        else:
            out.append(p)
    return " ".join(out), i


def try_parse_decl(stmt: List[Token]):
    """If `stmt` looks like `Type name [= init | (init) | {init}] ;`
    returns (type_text, name, init_tokens or None); else None."""
    parsed = _parse_type(stmt, 0)
    if parsed is None:
        return None
    type_text, i = parsed
    name_t = _at(stmt, i)
    if not _is(name_t, "id") or name_t.text in _CONTROL_KEYWORDS or \
            name_t.text in _DECL_QUALIFIERS:
        return None
    name = name_t.text
    i += 1
    nxt = _at(stmt, i)
    if nxt is None or _is(nxt, "op", ";"):
        return type_text, name, None
    if _is(nxt, "op", "="):
        init = list(stmt[i + 1:])
        while init and _is(init[-1], "op", ";"):
            init.pop()
        return type_text, name, init
    if _is(nxt, "op", "(") or _is(nxt, "op", "{"):
        open_t, close_t = (nxt.text, ")" if nxt.text == "(" else "}")
        close = _matching(stmt, i, open_t, close_t)
        # `Type name(args);` could still be a function declaration; treat
        # parens holding only type-ish tokens followed by end as ambiguous
        # and keep it — rules only consume decls with initializers for
        # dataflow, so the cost of misclassifying is nil.
        return type_text, name, list(stmt[i + 1:close])
    if _is(nxt, "op", ",") or _is(nxt, "op", "["):
        return type_text, name, None
    return None


# --- statement tree ----------------------------------------------------------


def _parse_stmt_span(tokens: List[Token], i: int, end: int):
    """Collects one generic statement starting at i (strictly before end).
    Returns (stmt_tokens, next_index). Braces inside parens (lambdas,
    braced calls) and braced initializers are consumed into the statement;
    the terminating ';' is included when present."""
    out: List[Token] = []
    depth = 0
    while i < end:
        t = tokens[i]
        if t.kind == "op":
            if t.text in ("(", "["):
                depth += 1
            elif t.text in (")", "]"):
                depth -= 1
            elif t.text == "{":
                close = _matching(tokens, i, "{", "}")
                out.extend(tokens[i:min(close + 1, end)])
                i = close + 1
                if depth <= 0:
                    # Braced init at statement level: `Foo x{1};` — a
                    # following ';' ends the statement; anything else means
                    # the brace was a body we should not have swallowed
                    # (handled by callers before we get here).
                    if _is(_at(tokens, i), "op", ";") and i < end:
                        out.append(tokens[i])
                        i += 1
                        return out, i
                    return out, i
                continue
            elif t.text == ";" and depth <= 0:
                out.append(t)
                return out, i + 1
        out.append(t)
        i += 1
    return out, i


def _classify_simple(stmt_tokens: List[Token]) -> Stmt:
    if not stmt_tokens:
        return Stmt("empty", 0)
    line = stmt_tokens[0].line
    parsed = try_parse_decl(stmt_tokens)
    if parsed is not None:
        type_text, name, init = parsed
        return Stmt("decl", line, head=stmt_tokens, decl_type=type_text,
                    decl_name=name, init=init)
    return Stmt("expr", line, head=stmt_tokens)


def parse_block(tokens: List[Token], open_idx: int) -> Tuple[Block, int]:
    """tokens[open_idx] == '{'; returns (Block, index_after_close)."""
    close = _matching(tokens, open_idx, "{", "}")
    block = Block()
    i = open_idx + 1
    while i < close:
        stmt, i = _parse_one_stmt(tokens, i, close)
        if stmt is not None:
            block.stmts.append(stmt)
    return block, close + 1


def _parse_body_or_stmt(tokens: List[Token], i: int,
                        end: int) -> Tuple[Block, int]:
    """Parses a control-statement body: a brace block or one statement."""
    if _is(_at(tokens, i), "op", "{"):
        blk, i = parse_block(tokens, i)
        return blk, i
    blk = Block()
    stmt, i = _parse_one_stmt(tokens, i, end)
    if stmt is not None:
        blk.stmts.append(stmt)
    return blk, i


def _parse_one_stmt(tokens: List[Token], i: int, end: int):
    """Parses one statement at i; returns (Stmt or None, next_index)."""
    t = _at(tokens, i)
    if t is None or i >= end:
        return None, end
    if _is(t, "op", ";"):
        return None, i + 1
    if _is(t, "op", "{"):
        blk, i = parse_block(tokens, i)
        return Stmt("block", t.line, blocks=[blk]), i
    if t.kind == "id":
        kw = t.text
        if kw in ("if", "while", "switch") and _is(
            _at(tokens, i + 1), "op", "("
        ):
            close = _matching(tokens, i + 1, "(", ")")
            head = list(tokens[i + 2:close])
            body, j = _parse_body_or_stmt(tokens, close + 1, end)
            blocks = [body]
            if kw == "if" and _is(_at(tokens, j), "id", "else"):
                else_body, j = _parse_body_or_stmt(tokens, j + 1, end)
                blocks.append(else_body)
            kind = "if" if kw == "if" else ("while" if kw == "while"
                                            else "switch")
            return Stmt(kind, t.line, head=head, blocks=blocks), j
        if kw == "do":
            body, j = _parse_body_or_stmt(tokens, i + 1, end)
            head: List[Token] = []
            if _is(_at(tokens, j), "id", "while") and _is(
                _at(tokens, j + 1), "op", "("
            ):
                close = _matching(tokens, j + 1, "(", ")")
                head = list(tokens[j + 2:close])
                j = close + 1
                if _is(_at(tokens, j), "op", ";"):
                    j += 1
            return Stmt("dowhile", t.line, head=head, blocks=[body]), j
        if kw == "for" and _is(_at(tokens, i + 1), "op", "("):
            close = _matching(tokens, i + 1, "(", ")")
            inner = list(tokens[i + 2:close])
            colon = None
            depth = 0
            for k, tk in enumerate(inner):
                if tk.kind == "op":
                    if tk.text in "([{":
                        depth += 1
                    elif tk.text in ")]}":
                        depth -= 1
                    elif tk.text == ";" and depth == 0:
                        colon = None
                        break
                    elif tk.text == ":" and depth == 0 and colon is None:
                        prev = inner[k - 1] if k else None
                        if not (prev is not None and prev.kind == "op"
                                and prev.text == ":"):
                            colon = k
                            break
            body, j = _parse_body_or_stmt(tokens, close + 1, end)
            if colon is not None:
                var_tokens = inner[:colon]
                range_expr = inner[colon + 1:]
                var_type = None
                var_name = None
                ids = [x for x in var_tokens if x.kind == "id"]
                if ids:
                    var_name = ids[-1].text
                    var_type = "".join(
                        x.text for x in var_tokens
                        if not (x.kind == "id" and x is ids[-1]))
                return Stmt("rangefor", t.line, head=inner, blocks=[body],
                            loop_var_type=var_type, loop_var=var_name,
                            range_expr=range_expr), j
            # Classic for: parse the init clause as a statement.
            semi = None
            depth = 0
            for k, tk in enumerate(inner):
                if tk.kind == "op":
                    if tk.text in "([{":
                        depth += 1
                    elif tk.text in ")]}":
                        depth -= 1
                    elif tk.text == ";" and depth == 0:
                        semi = k
                        break
            for_init = None
            if semi is not None and semi > 0:
                for_init = _classify_simple(inner[:semi])
            return Stmt("for", t.line, head=inner, blocks=[body],
                        for_init=for_init), j
        if kw == "return":
            stmt_tokens, j = _parse_stmt_span(tokens, i, end)
            return Stmt("return", t.line, head=stmt_tokens[1:]), j
        if kw in ("break", "continue"):
            stmt_tokens, j = _parse_stmt_span(tokens, i, end)
            return Stmt(kw, t.line), j
        if kw in ("case", "default"):
            j = i
            while j < end and not _is(tokens[j], "op", ":"):
                j += 1
            return None, j + 1
        if kw == "else":
            # Dangling else from a single-statement if we mis-parsed;
            # swallow its body to keep walking.
            body, j = _parse_body_or_stmt(tokens, i + 1, end)
            return Stmt("block", t.line, blocks=[body]), j
        if kw == "try":
            body, j = _parse_body_or_stmt(tokens, i + 1, end)
            blocks = [body]
            while _is(_at(tokens, j), "id", "catch") and _is(
                _at(tokens, j + 1), "op", "("
            ):
                cclose = _matching(tokens, j + 1, "(", ")")
                cbody, j = _parse_body_or_stmt(tokens, cclose + 1, end)
                blocks.append(cbody)
            return Stmt("try", t.line, blocks=blocks), j
        if kw in ("using", "typedef", "static_assert", "goto"):
            stmt_tokens, j = _parse_stmt_span(tokens, i, end)
            return Stmt("expr", t.line, head=stmt_tokens), j
        if kw in ("class", "struct", "enum", "union"):
            j = i
            while j < end:
                tj = tokens[j]
                if _is(tj, "op", ";"):
                    return None, j + 1
                if _is(tj, "op", "{"):
                    bclose = _matching(tokens, j, "{", "}")
                    j = bclose + 1
                    # Local type definition; a declarator may follow.
                    stmt_tokens, j2 = _parse_stmt_span(tokens, j, end)
                    return None, j2
                j += 1
            return None, end
        # Label `name:` (not `::`).
        if _is(_at(tokens, i + 1), "op", ":") and not _is(
            _at(tokens, i + 1), "op", "::"
        ) and t.text not in ("public", "private", "protected"):
            nxt2 = _at(tokens, i + 2)
            if nxt2 is not None and not _is(nxt2, "op", ":"):
                # Heuristic: treat as label only for the gtest-free common
                # case of an id directly followed by ':' and a statement
                # keyword; otherwise fall through to a generic statement.
                pass
    stmt_tokens, j = _parse_stmt_span(tokens, i, end)
    return _classify_simple(stmt_tokens), j


# --- function discovery ------------------------------------------------------


def _stmt_boundary_before(tokens: List[Token], i: int) -> int:
    """Index of the first token of the declaration that ends at/after i."""
    j = i - 1
    while j >= 0:
        t = tokens[j]
        if t.kind == "op" and t.text in (";", "{", "}"):
            return j + 1
        if t.kind == "op" and t.text == ":" and j > 0 and \
                tokens[j - 1].kind == "id" and tokens[j - 1].text in (
                    "public", "private", "protected"):
            return j + 1
        j -= 1
    return 0


def _skip_fn_tail(tokens: List[Token], i: int):
    """After a parameter-list ')', skips cv/ref/noexcept/attributes and a
    trailing return type. Returns (body_open_index or None, trailing_type).
    body_open_index is the '{' of a definition; None when the declaration
    ends in ';' (or anything unparseable)."""
    trailing = ""
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if _is(t, "id") and t.text in _FN_TAIL_QUALIFIERS:
            if _is(_at(tokens, i + 1), "op", "("):
                i = _matching(tokens, i + 1, "(", ")") + 1
            else:
                i += 1
            continue
        if _is(t, "op", "&") or _is(t, "op", "&&"):
            i += 1
            continue
        if _is(t, "op", "->"):
            parsed = _parse_type(tokens, i + 1)
            if parsed is None:
                return None, trailing
            trailing, i = parsed
            continue
        if _is(t, "op", "{"):
            return i, trailing
        if _is(t, "op", ";"):
            return None, trailing
        if _is(t, "op", ":"):
            # Constructor initializer list: id ( ... ) | id { ... } [, ...]
            j = i + 1
            while j < n:
                if not _is(_at(tokens, j), "id"):
                    return None, trailing
                j += 1
                while _is(_at(tokens, j), "op", "::") or _is(
                    _at(tokens, j), "id"
                ):
                    j += 1
                if _is(_at(tokens, j), "op", "<"):
                    j = _close_angle(tokens, j) + 1
                if _is(_at(tokens, j), "op", "("):
                    j = _matching(tokens, j, "(", ")") + 1
                elif _is(_at(tokens, j), "op", "{"):
                    j = _matching(tokens, j, "{", "}") + 1
                else:
                    return None, trailing
                if _is(_at(tokens, j), "op", ","):
                    j += 1
                    continue
                if _is(_at(tokens, j), "op", "{"):
                    return j, trailing
                return None, trailing
            return None, trailing
        return None, trailing
    return None, trailing


def _parse_params(tokens: List[Token]) -> List[Param]:
    params: List[Param] = []
    for part in split_commas(tokens):
        texts = [t.text for t in part]
        if texts in (["void"], ["..."]):
            continue
        # Drop default arguments.
        eq = None
        depth = 0
        for k, t in enumerate(part):
            if t.kind == "op":
                if t.text in "([{":
                    depth += 1
                elif t.text in ")]}":
                    depth -= 1
                elif t.text == "=" and depth == 0:
                    eq = k
                    break
        core = part[:eq] if eq is not None else part
        ids = [t for t in core if t.kind == "id"
               and t.text not in _DECL_QUALIFIERS]
        if not ids:
            continue
        name = ids[-1].text if len(ids) >= 2 else ""
        type_tokens = core if len(ids) < 2 else core[:-1]
        while type_tokens and type_tokens[-1].kind == "id" and \
                type_tokens[-1].text == name and len(ids) >= 2:
            type_tokens = type_tokens[:-1]
        type_text = " ".join(t.text for t in type_tokens)
        params.append(Param(type_text=type_text, name=name))
    return params


def find_functions(tokens: List[Token],
                   class_spans: List[Tuple[str, int, int]]):
    """Yields FunctionInfo for every function *definition* in the token
    stream. class_spans: (name, body_start, body_end) from _class_bodies,
    used to attribute inline methods to their class."""
    n = len(tokens)
    i = 0
    out: List[FunctionInfo] = []
    while i < n:
        t = tokens[i]
        if not _is(t, "op", "("):
            i += 1
            continue
        name_t = _at(tokens, i - 1)
        if not _is(name_t, "id") or name_t.text in _CONTROL_KEYWORDS or \
                name_t.text in _DECL_QUALIFIERS:
            i += 1
            continue
        prev = _at(tokens, i - 2)
        if _is(prev, "op", ".") or _is(prev, "op", "->"):
            i += 1
            continue  # method call, not a definition
        close = _matching(tokens, i, "(", ")")
        if close >= n:
            i += 1
            continue
        body_open, _trailing = _skip_fn_tail(tokens, close + 1)
        # Qualified name components before the name: A::B::name.
        qual_parts = [name_t.text]
        j = i - 2
        while _is(_at(tokens, j), "op", "::") and _is(
            _at(tokens, j - 1), "id"
        ):
            qual_parts.insert(0, tokens[j - 1].text)
            j -= 2
        start = _stmt_boundary_before(tokens, j + 1)
        ret_tokens = [x for x in tokens[start:j + 1]
                      if not (x.kind == "id" and x.text in (
                          "static", "inline", "constexpr", "virtual",
                          "explicit", "friend", "extern", "LL_REQUIRES"))]
        # Skip template headers and macro-ish all-caps attribute tokens.
        if ret_tokens and _is(ret_tokens[0], "id", "template"):
            i = close + 1
            continue
        return_type = " ".join(x.text for x in ret_tokens)
        if body_open is None:
            # File-scope prototype (`uint32_t f(int64_t t);`): record the
            # signature (body=None) so call-site rules can resolve it. A
            # call expression never qualifies — its boundary leaves no
            # return-type tokens, or leaves an '=' / control keyword.
            macroish = name_t.text.isupper() and "_" in name_t.text
            if _is(_at(tokens, close + 1), "op", ";") and ret_tokens and \
                    not macroish and \
                    not any(x.kind == "op" and x.text == "=" or
                            (x.kind == "id" and x.text in _CONTROL_KEYWORDS)
                            for x in ret_tokens):
                out.append(FunctionInfo(
                    name=name_t.text,
                    qualname="::".join(qual_parts),
                    class_name=qual_parts[-2] if len(qual_parts) >= 2
                    else None,
                    return_type=return_type,
                    params=_parse_params(tokens[i + 1:close]),
                    line=name_t.line,
                    body=None,
                ))
            i = close + 1
            continue
        class_name = qual_parts[-2] if len(qual_parts) >= 2 else None
        if class_name is None:
            for cname, b0, b1 in class_spans:
                if b0 <= body_open < b1:
                    class_name = cname
                    break
        body, after = parse_block(tokens, body_open)
        out.append(FunctionInfo(
            name=name_t.text,
            qualname="::".join(qual_parts),
            class_name=class_name,
            return_type=return_type,
            params=_parse_params(tokens[i + 1:close]),
            line=name_t.line,
            body=body,
            requires_lock=_extract_requires(tokens[close + 1:body_open]),
        ))
        i = after
    return out


# --- class/member tables -----------------------------------------------------


def _extract_requires(tokens: List[Token]) -> List[str]:
    """Mutex names from LL_REQUIRES(...) occurrences in a signature tail."""
    out: List[str] = []
    for k, t in enumerate(tokens):
        if not _is(t, "id", "LL_REQUIRES") or \
                not _is(_at(tokens, k + 1), "op", "("):
            continue
        close = _matching(tokens, k + 1, "(", ")")
        out.extend(x.text for x in tokens[k + 2:close] if x.kind == "id")
    return out


def _parse_classes(tokens: List[Token]):
    """Returns ({name: ClassInfo}, class_spans, member_fn_decls)."""
    classes = {}
    spans = []
    member_decls: List[FunctionInfo] = []
    for cls, b0, b1 in _class_bodies(tokens):
        spans.append((cls, b0, b1))
        info = classes.setdefault(cls, ClassInfo(cls, tokens[b0].line
                                                 if b0 < len(tokens) else 0))
        for stmt in _member_statements(tokens, b0, b1):
            if _is_mutex_statement(stmt):
                ids = [t.text for t in stmt if t.kind == "id"]
                if ids:
                    info.mutexes.append(ids[-1])
                continue
            texts = [t.text for t in stmt]
            if "LL_GUARDED_BY" in texts or "LL_PT_GUARDED_BY" in texts:
                gi = texts.index("LL_GUARDED_BY") if "LL_GUARDED_BY" in texts \
                    else texts.index("LL_PT_GUARDED_BY")
                mutex = None
                if gi + 2 < len(texts) and texts[gi + 1] == "(":
                    mutex = texts[gi + 2]
                core = stmt[:gi]
                parsed = try_parse_decl(core)
                if parsed is None:
                    ids = [t for t in core if t.kind == "id"]
                    if not ids:
                        continue
                    fname = ids[-1].text
                    ftype = " ".join(t.text for t in core[:-1])
                else:
                    ftype, fname, _ = parsed
                info.fields[fname] = FieldInfo(
                    fname, ftype, stmt[0].line, guarded_by=mutex)
                continue
            # Member function declaration -> signature table entry.
            paren = None
            angle = 0
            for k, tk in enumerate(stmt):
                if tk.kind == "op":
                    if tk.text == "<":
                        angle += 1
                    elif tk.text == ">":
                        angle = max(0, angle - 1)
                    elif tk.text == ">>":
                        angle = max(0, angle - 2)
                    elif tk.text == "(" and angle == 0:
                        paren = k
                        break
            if paren is not None and paren >= 1 and \
                    stmt[paren - 1].kind == "id" and \
                    stmt[paren - 1].text not in _CONTROL_KEYWORDS:
                close = _matching(stmt, paren, "(", ")")
                if close < len(stmt):
                    fname = stmt[paren - 1].text
                    ret = " ".join(
                        t.text for t in stmt[:paren - 1]
                        if not (t.kind == "id" and t.text in (
                            "virtual", "static", "inline", "constexpr",
                            "explicit", "friend")))
                    member_decls.append(FunctionInfo(
                        name=fname, qualname=f"{cls}::{fname}",
                        class_name=cls, return_type=ret,
                        params=_parse_params(stmt[paren + 1:close]),
                        line=stmt[0].line, body=None,
                        requires_lock=_extract_requires(stmt[close + 1:])))
                continue
            # Plain field (no annotation).
            parsed = try_parse_decl(stmt)
            if parsed is not None:
                ftype, fname, _ = parsed
                info.fields[fname] = FieldInfo(fname, ftype, stmt[0].line)
    return classes, spans, member_decls


# --- entry points ------------------------------------------------------------


def parse_tokens(rel: str, tokens: List[Token]) -> TranslationUnit:
    classes, spans, member_decls = _parse_classes(tokens)
    functions = find_functions(tokens, spans)
    table = SymbolTable(classes=classes, source="internal")
    for fn in list(functions) + member_decls:
        table.functions.setdefault(fn.name, []).append(fn)
    unordered = set(_unordered_decls(tokens))
    for cls in classes.values():
        for f in cls.fields.values():
            if "unordered_" in f.type_text:
                unordered.add(f.name)
    table.unordered_names = frozenset(unordered)
    return TranslationUnit(rel=rel, tokens=tokens, functions=functions,
                           symbols=table, frontend="internal")


def load_tu(fs_path: Path, rel: str) -> TranslationUnit:
    """Parses one file; when given `foo.cc`, merges the sibling `foo.h`
    class/function tables so out-of-line methods see their fields."""
    text = fs_path.read_text(encoding="utf-8", errors="replace")
    tokens, _comments = tokenize(text)
    tu = parse_tokens(rel, tokens)
    if fs_path.suffix in (".cc", ".cpp", ".cxx"):
        for header_suffix in (".h", ".hpp", ".hh"):
            sibling = fs_path.with_suffix(header_suffix)
            if sibling.is_file():
                htext = sibling.read_text(encoding="utf-8", errors="replace")
                htokens, _ = tokenize(htext)
                htu = parse_tokens(rel, htokens)
                for name, cls in htu.symbols.classes.items():
                    mine = tu.symbols.classes.get(name)
                    if mine is None:
                        tu.symbols.classes[name] = cls
                    else:
                        for fname, finfo in cls.fields.items():
                            mine.fields.setdefault(fname, finfo)
                        mine.mutexes.extend(
                            m for m in cls.mutexes if m not in mine.mutexes)
                for name, fns in htu.symbols.functions.items():
                    tu.symbols.functions.setdefault(name, []).extend(
                        f for f in fns if f.body is None)
                tu.symbols.unordered_names = frozenset(
                    set(tu.symbols.unordered_names)
                    | set(htu.symbols.unordered_names))
                break
    return tu
