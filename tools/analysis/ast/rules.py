"""Flow-sensitive rules over the astmodel IR.

Each rule is modeled on a bug class this repo actually shipped and fixed:

  deferred-raw-this            PR 1: deferred QuicConnection callbacks
                               captured raw `this` and fired after free;
                               the fix captures a weak live-token.
  iterator-invalidation        PR 2: H2 stream-limit reentrancy — mutation
                               of a container while iterators/references
                               into it are live across statements.
  guarded-field-alias          PR 4 follow-up: a pointer/reference to an
                               LL_GUARDED_BY field used outside the lock
                               scope, which clang -Wthread-safety misses.
  cross-function-narrowing-time-arith
                               PR 4: 64->32-bit time/packet-number
                               truncation — here through call arguments,
                               returns, and later assignments, not just
                               single cast expressions.
  nondeterministic-iteration-escape
                               PR 1-5: unordered-container iteration order
                               flowing into trace/bench/report output.

Rules act only on what the frontends recover; unparsed constructs degrade
to silence. Messages carry the evidence (what was killed where) so a
finding is checkable by reading the two named lines.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Set

from ..lexer import Token
from ..rules import _MUTATORS, _at, _is, _matching, _taint, RuleFinding
from .astmodel import (
    Block, FunctionInfo, Stmt, TranslationUnit, is_narrow_int, walk_blocks,
)


class ASTRule(NamedTuple):
    name: str
    applies_to: Callable[[str], bool]
    check: Callable[[TranslationUnit], List[RuleFinding]]
    doc: str


def _everywhere(_rel: str) -> bool:
    return True


def _src_only(rel: str) -> bool:
    return "src/" in rel


# --- shared expression helpers ----------------------------------------------


def _split_args(tokens: Sequence[Token]) -> List[List[Token]]:
    """Top-level comma split with (), [], {} and template <> tracking."""
    parts: List[List[Token]] = [[]]
    depth = 0
    angle = 0
    for i, t in enumerate(tokens):
        if t.kind == "op":
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == "<" and i > 0 and tokens[i - 1].kind == "id":
                angle += 1
            elif t.text == ">" and angle > 0:
                angle -= 1
            elif t.text == ">>" and angle > 0:
                angle = max(0, angle - 2)
            elif t.text == "," and depth == 0 and angle == 0:
                parts.append([])
                continue
        parts[-1].append(t)
    return [p for p in parts if p]


def _find_calls(tokens: Sequence[Token], names: Set[str]):
    """Yields (name_index, arg_tokens) for calls to any name in `names`.
    Matches bare calls and member calls (x.name(...), x->name(...))."""
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.text not in names:
            continue
        if not _is(_at(tokens, i + 1), "op", "("):
            continue
        close = _matching(tokens, i + 1, "(", ")")
        yield i, list(tokens[i + 2:close])


def _find_lambdas(tokens: Sequence[Token]):
    """Yields (intro_index, capture_tokens, after_close_index) for each
    lambda introducer in the slice. A '[' is a lambda intro when it cannot
    be an index/subscript (prev token is an operator that cannot end an
    expression, or start of slice) and is followed by '(' or '{' after the
    matching ']' (allowing parameter lists and 'mutable')."""
    for i, t in enumerate(tokens):
        if not _is(t, "op", "["):
            continue
        prev = _at(tokens, i - 1)
        if prev is not None and (
            prev.kind in ("id", "num", "str")
            or (prev.kind == "op" and prev.text in (")", "]"))
        ):
            continue  # subscript or array declarator
        close = _matching(tokens, i, "[", "]")
        if close >= len(tokens):
            continue
        nxt = _at(tokens, close + 1)
        if not (_is(nxt, "op", "(") or _is(nxt, "op", "{")
                or _is(nxt, "id", "mutable")):
            continue
        yield i, list(tokens[i + 1:close]), close + 1


_SAFE_CAPTURE_HINT = re.compile(
    r"weak|token|self|alive|live|shared", re.IGNORECASE)


def _raw_this_captures(captures: List[Token],
                       in_method: bool) -> Optional[str]:
    """Returns a description of the raw-`this` capture, or None when the
    capture list is safe. A weak/shared guard anywhere in the list makes
    the whole lambda safe (the PR 1 live-token idiom)."""
    entries = _split_args(captures)
    for entry in entries:
        if any(_SAFE_CAPTURE_HINT.search(t.text) for t in entry
               if t.kind == "id"):
            return None
    for entry in entries:
        texts = [t.text for t in entry]
        if texts == ["this"]:
            return "captures raw `this`"
        if texts == ["&"] and in_method:
            return "default &-capture implicitly captures raw `this`"
        if texts == ["="] and in_method:
            return "default =-capture copies raw `this`"
        if len(texts) == 2 and texts[0] == "&" and entry[1].kind == "id" \
                and texts[1].endswith("_"):
            return f"captures member '{texts[1]}' by reference " \
                   "(aliases raw `this`)"
    return None


# --- rule 1: deferred-raw-this ----------------------------------------------

_DEFER_FNS = frozenset({
    "schedule", "schedule_at", "post", "defer", "call_later", "run_later",
    "run_at", "add_callback", "on_next_tick",
})


def _check_deferred_raw_this(tu: TranslationUnit) -> List[RuleFinding]:
    out: List[RuleFinding] = []
    for fn in tu.functions:
        if fn.body is None:
            continue
        in_method = fn.class_name is not None
        tainted: Dict[str, str] = {}  # local name -> capture description
        for stmt in walk_blocks(fn.body):
            tokens = stmt.head
            if not tokens:
                continue
            # Locals initialized with a raw-this lambda taint their name.
            if stmt.kind == "decl" and stmt.init:
                for _li, caps, _after in _find_lambdas(stmt.init):
                    why = _raw_this_captures(caps, in_method)
                    if why is not None and stmt.decl_name:
                        tainted[stmt.decl_name] = why
            for name_i, args in _find_calls(tokens, _DEFER_FNS):
                reported = False
                for _li, caps, _after in _find_lambdas(args):
                    why = _raw_this_captures(caps, in_method)
                    if why is not None:
                        out.append(RuleFinding(
                            tokens[name_i].line,
                            f"lambda passed to deferred-execution call "
                            f"'{tokens[name_i].text}()' {why}; the event "
                            "queue outlives the object (PR 1 "
                            "use-after-free class) — capture a weak "
                            "live-token and bail out when it is gone"))
                        reported = True
                if reported:
                    continue
                for arg in _split_args(args):
                    ids = [t.text for t in arg if t.kind == "id"]
                    core = [x for x in ids if x not in ("std", "move")]
                    if len(core) == 1 and core[0] in tainted:
                        out.append(RuleFinding(
                            tokens[name_i].line,
                            f"'{core[0]}' (a lambda that "
                            f"{tainted[core[0]]}) escapes into deferred-"
                            f"execution call '{tokens[name_i].text}()' "
                            "(PR 1 use-after-free class) — capture a weak "
                            "live-token instead"))
    return out


# --- rule 2: iterator-invalidation ------------------------------------------

_ITER_SOURCES = frozenset({
    "begin", "end", "rbegin", "rend", "cbegin", "cend",
    "find", "lower_bound", "upper_bound",
})
_REF_SOURCES = frozenset({"back", "front", "at", "top", "data"})
_KILL_FNS = frozenset(_MUTATORS) | {"reserve", "shrink_to_fit"}


class _IterRecord:
    __slots__ = ("name", "container", "kind", "decl_line", "kill_line",
                 "kill_what", "reported")

    def __init__(self, name: str, container: str, kind: str, line: int):
        self.name = name
        self.container = container
        self.kind = kind  # 'iterator' | 'reference'
        self.decl_line = line
        self.kill_line: Optional[int] = None
        self.kill_what: Optional[str] = None
        self.reported = False

    @property
    def valid(self) -> bool:
        return self.kill_line is None


def _copy_rec(rec: "_IterRecord") -> "_IterRecord":
    dup = _IterRecord(rec.name, rec.container, rec.kind, rec.decl_line)
    dup.kill_line = rec.kill_line
    dup.kill_what = rec.kill_what
    dup.reported = rec.reported
    return dup


def _container_sig(tokens: Sequence[Token]) -> Optional[str]:
    """Normalized signature for a container expression; None when the
    expression has no stable object (calls, temporaries)."""
    texts = [t.text for t in tokens]
    while texts[:2] == ["this", "->"]:
        texts = texts[2:]
    if not texts or "(" in texts or ")" in texts:
        return None
    return "".join(texts)


def _iter_source_of(init: Sequence[Token]):
    """`EXPR . fn ( ... )` with fn an iterator/ref source -> (sig, fn)."""
    for i, t in enumerate(init):
        if t.kind != "id" or not _is(_at(init, i + 1), "op", "("):
            continue
        if t.text not in _ITER_SOURCES and t.text not in _REF_SOURCES:
            continue
        dot = _at(init, i - 1)
        if not (_is(dot, "op", ".") or _is(dot, "op", "->")):
            continue
        sig = _container_sig(init[:i - 1])
        if sig is None:
            continue
        kind = "iterator" if t.text in _ITER_SOURCES else "reference"
        return sig, t.text, kind
    # `&EXPR[...]` / plain `EXPR[...]` bound to a reference.
    for i, t in enumerate(init):
        if _is(t, "op", "["):
            start = 1 if init and _is(init[0], "op", "&") else 0
            sig = _container_sig(init[start:i])
            if sig is not None:
                return sig, "operator[]", "reference"
            break
    return None


def _mutations_in(tokens: Sequence[Token], sigs: Set[str]):
    """Yields (sig, fn_name, line) for mutations of tracked containers."""
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.text not in _KILL_FNS:
            continue
        if not _is(_at(tokens, i + 1), "op", "("):
            continue
        dot = _at(tokens, i - 1)
        if not (_is(dot, "op", ".") or _is(dot, "op", "->")):
            continue
        # Walk the member chain leftwards to the start of the object expr.
        j = i - 1
        while j - 1 >= 0:
            pt = tokens[j - 1]
            if pt.kind in ("id", "num"):
                j -= 1
                continue
            if pt.kind == "op" and pt.text in (".", "->", "::"):
                j -= 1
                continue
            if pt.kind == "op" and pt.text == "]":
                j = _rfind_open(tokens, j - 1, "[", "]")
                continue
            break
        sig = _container_sig(tokens[j:i - 1])
        if sig is not None and sig in sigs:
            yield sig, t.text, t.line
        _ = n


def _rfind_open(tokens: Sequence[Token], close_idx: int, open_t: str,
                close_t: str) -> int:
    depth = 1
    j = close_idx
    while j >= 0:
        t = tokens[j]
        if t.kind == "op":
            if t.text == close_t:
                depth += 1
            elif t.text == open_t:
                depth -= 1
                if depth == 0:
                    return j
        j -= 1
    return 0


def _uses_of(tokens: Sequence[Token], name: str):
    """Yields token indices where `name` is used as a value (not a member
    access target's member, not qualified)."""
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.text != name:
            continue
        prev = _at(tokens, i - 1)
        if _is(prev, "op", ".") or _is(prev, "op", "->") or \
                _is(prev, "op", "::"):
            continue
        yield i


def _check_iterator_invalidation(tu: TranslationUnit) -> List[RuleFinding]:
    out: List[RuleFinding] = []

    def head_uses(stmt: Stmt, rec: _IterRecord) -> bool:
        return any(True for _ in _uses_of(stmt.head, rec.name))

    def process_block(block: Block, records: Dict[str, _IterRecord]):
        for stmt in block.stmts:
            process_stmt(stmt, records)

    def process_stmt(stmt: Stmt, records: Dict[str, _IterRecord]):
        tokens = stmt.head
        # 1. Uses of already-killed iterators (pre-state of this stmt).
        reassigned = None
        if len(tokens) >= 2 and tokens[0].kind == "id" and \
                _is(tokens[1], "op", "="):
            reassigned = tokens[0].text
        if stmt.kind == "decl" and stmt.decl_name in records:
            # A shadowing re-declaration rebinds the name, it is not a use
            # of the dead iterator; step 2 installs the fresh record.
            records.pop(stmt.decl_name)
        for rec in records.values():
            if rec.valid or rec.reported:
                continue
            for ui in _uses_of(tokens, rec.name):
                if reassigned == rec.name and ui == 0:
                    continue  # LHS of a reassignment revalidates below
                out.append(RuleFinding(
                    tokens[ui].line,
                    f"use of {rec.kind} '{rec.name}' into container "
                    f"'{rec.container}' after '{rec.container}."
                    f"{rec.kill_what}()' invalidated it at line "
                    f"{rec.kill_line}"))
                rec.reported = True
                break
        # 2. New iterator/reference declarations (and re-bindings).
        if stmt.kind == "decl" and stmt.init:
            src = _iter_source_of(stmt.init)
            if src is not None and stmt.decl_name:
                sig, _fn, kind = src
                if kind == "reference" and stmt.decl_type and not (
                    "&" in stmt.decl_type or "*" in stmt.decl_type
                ):
                    pass  # by-value copy: immune to invalidation
                else:
                    records[stmt.decl_name] = _IterRecord(
                        stmt.decl_name, sig, kind, stmt.line)
        elif reassigned is not None:
            src = _iter_source_of(tokens[2:])
            if src is not None:
                sig, _fn, kind = src
                records[reassigned] = _IterRecord(
                    reassigned, sig, kind, tokens[0].line)
            elif reassigned in records:
                records.pop(reassigned)  # rebound to something unknown
        # 3. Mutations kill in-range records (`it = c.erase(it)` rebinds
        #    instead via the branch above, so order matters: rebind wins).
        sigs = {r.container for r in records.values() if r.valid}
        if sigs:
            for sig, fname, line in _mutations_in(tokens, sigs):
                for rec in records.values():
                    if rec.valid and rec.container == sig and \
                            rec.name != reassigned:
                        rec.kill_line = line
                        rec.kill_what = fname
        # 4. Range-for: the loop variable is a reference into the range.
        if stmt.kind == "rangefor" and stmt.range_expr and stmt.loop_var:
            sig = _container_sig(stmt.range_expr)
            if sig is not None:
                inner = dict(records)
                inner[stmt.loop_var] = _IterRecord(
                    stmt.loop_var, sig, "reference", stmt.line)
                # Mutating the iterated container anywhere in the body
                # invalidates the hidden range iterators on the back edge.
                before = {n: r.kill_line for n, r in inner.items()}
                for sub in stmt.blocks:
                    process_block(sub, inner)
                for name, rec in inner.items():
                    if rec.container != sig or rec.name != stmt.loop_var:
                        continue
                    if rec.kill_line is not None and \
                            before.get(name) is None and not rec.reported:
                        out.append(RuleFinding(
                            rec.kill_line,
                            f"'{sig}.{rec.kill_what}()' mutates "
                            f"'{sig}' while it is being range-for "
                            "iterated (line "
                            f"{stmt.line}): the loop's hidden iterators "
                            "are invalidated on the next step"))
                        rec.reported = True
                for name, rec in inner.items():
                    if name in records:
                        records[name] = rec
                return
        # 5. Loops: a kill inside the body invalidates head uses on the
        #    back edge (`while (it != c.end()) { c.erase(it); }`).
        if stmt.kind in ("for", "while", "dowhile") and stmt.blocks:
            if stmt.kind == "for" and stmt.for_init is not None:
                process_stmt(stmt.for_init, records)
            inner = dict(records)
            pre_kills = {n: r.kill_line for n, r in inner.items()}
            for sub in stmt.blocks:
                process_block(sub, inner)
            for name, rec in inner.items():
                if rec.valid or rec.reported:
                    continue
                if pre_kills.get(name) is not None:
                    continue  # killed before the loop, already reportable
                if head_uses(stmt, rec):
                    out.append(RuleFinding(
                        rec.kill_line,
                        f"loop at line {stmt.line} re-tests {rec.kind} "
                        f"'{rec.name}' after '{rec.container}."
                        f"{rec.kill_what}()' invalidated it (rebind with "
                        f"'{rec.name} = {rec.container}."
                        f"{rec.kill_what}(...)' or break)"))
                    rec.reported = True
            records.update(inner)
            return
        # 6. if/else (and switch arms): the branches are mutually
        #    exclusive, so each runs on its own copy of the pre-state; a
        #    kill in either branch then propagates to the post-state.
        if stmt.kind in ("if", "switch") and len(stmt.blocks) >= 1:
            branch_states = []
            for sub in stmt.blocks:
                branch = {n: _copy_rec(r) for n, r in records.items()}
                process_block(sub, branch)
                branch_states.append(branch)
            for name, rec in records.items():
                for branch in branch_states:
                    b = branch.get(name)
                    if b is None:
                        continue
                    if rec.valid and not b.valid:
                        rec.kill_line = b.kill_line
                        rec.kill_what = b.kill_what
                    rec.reported = rec.reported or b.reported
            return
        # 7. Other nested blocks: same linear state.
        for sub in stmt.blocks:
            process_block(sub, records)

    for fn in tu.functions:
        if fn.body is None:
            continue
        process_block(fn.body, {})
    return out


# --- rule 3: guarded-field-alias --------------------------------------------

_LOCK_TYPES = frozenset({
    "MutexLock", "util::MutexLock", "std::lock_guard", "std::unique_lock",
    "std::scoped_lock", "std::shared_lock", "lock_guard", "unique_lock",
    "scoped_lock", "shared_lock",
})


def _base_type(type_text: str) -> str:
    return type_text.split("<")[0].replace("const", "").strip()


def _check_guarded_field_alias(tu: TranslationUnit) -> List[RuleFinding]:
    out: List[RuleFinding] = []

    for fn in tu.functions:
        if fn.body is None or fn.class_name is None:
            continue
        cls = tu.symbols.classes.get(fn.class_name)
        if cls is None:
            continue
        guarded = {name: f for name, f in cls.fields.items()
                   if f.guarded_by is not None}
        if not guarded:
            continue
        ret_is_ref = "&" in fn.return_type or "*" in fn.return_type

        # aliases: name -> (field, lock_id or None); expired aliases move
        # their lock_id into `expired`.
        aliases: Dict[str, tuple] = {}
        reported: Set[str] = set()

        def field_in(tokens: Sequence[Token]) -> Optional[str]:
            for i, t in enumerate(tokens):
                if t.kind == "id" and t.text in guarded:
                    prev = _at(tokens, i - 1)
                    if _is(prev, "op", ".") or _is(prev, "op", "::"):
                        continue  # other.field / Class::field
                    return t.text
            return None

        def addr_of_field_in(tokens: Sequence[Token]) -> Optional[str]:
            """Field whose address is taken (`&field` / `&this->field`)."""
            for i, t in enumerate(tokens):
                if t.kind != "id" or t.text not in guarded:
                    continue
                prev = _at(tokens, i - 1)
                if _is(prev, "op", "&"):
                    return t.text
                if _is(prev, "op", "->") and \
                        _is(_at(tokens, i - 2), "id", "this") and \
                        _is(_at(tokens, i - 3), "op", "&"):
                    return t.text
            return None

        def walk(block: Block, active_locks: List[int]):
            # Lock objects declared in this block die when it ends.
            own_locks: List[int] = []
            for stmt in block.stmts:
                tokens = stmt.head
                if stmt.kind == "decl" and stmt.decl_type and \
                        _base_type(stmt.decl_type) in _LOCK_TYPES:
                    lock_id = id(stmt)
                    own_locks.append(lock_id)
                    active_locks.append(lock_id)
                    continue
                # Alias creation: reference/pointer decl over a guarded
                # field.
                if stmt.kind == "decl" and stmt.init and stmt.decl_type \
                        and ("&" in stmt.decl_type or "*" in stmt.decl_type):
                    fname = field_in(stmt.init)
                    if fname is not None and stmt.decl_name:
                        if not active_locks:
                            out.append(RuleFinding(
                                stmt.line,
                                f"alias of '{fname}' (LL_GUARDED_BY("
                                f"{guarded[fname].guarded_by})) taken "
                                "without holding its mutex"))
                            reported.add(stmt.decl_name)
                        else:
                            aliases[stmt.decl_name] = (
                                fname, active_locks[-1], stmt.line)
                        continue
                # Alias creation by assignment: `p = &field;`.
                if stmt.kind == "expr" and len(tokens) >= 3 and \
                        tokens[0].kind == "id" and _is(tokens[1], "op", "="):
                    fname = addr_of_field_in(tokens[2:])
                    if fname is not None:
                        if not active_locks:
                            out.append(RuleFinding(
                                stmt.line,
                                f"address of '{fname}' (LL_GUARDED_BY("
                                f"{guarded[fname].guarded_by})) taken "
                                "without holding its mutex"))
                            reported.add(tokens[0].text)
                        else:
                            aliases[tokens[0].text] = (
                                fname, active_locks[-1], stmt.line)
                        continue
                # Return escape: a ref/ptr-returning method handing out a
                # guarded field (directly or via a live alias).
                if stmt.kind == "return" and tokens:
                    fname = field_in(tokens)
                    if fname is not None and ret_is_ref:
                        out.append(RuleFinding(
                            stmt.line,
                            f"'{fn.qualname}' returns a reference/pointer "
                            f"to '{fname}' (LL_GUARDED_BY("
                            f"{guarded[fname].guarded_by})): the caller "
                            "holds it after the lock is released"))
                        continue
                    for name, (afield, _lk, _dl) in aliases.items():
                        if name in reported:
                            continue
                        if ret_is_ref and any(True for _ in _uses_of(tokens, name)):
                            out.append(RuleFinding(
                                stmt.line,
                                f"'{fn.qualname}' returns alias '{name}' "
                                f"of guarded field '{afield}': it escapes "
                                "the lock scope"))
                            reported.add(name)
                # Use of an alias whose lock scope has ended.
                for name, (afield, lock_id, decl_line) in list(
                        aliases.items()):
                    if name in reported or lock_id in active_locks:
                        continue
                    if any(True for _ in _uses_of(tokens, name)):
                        out.append(RuleFinding(
                            tokens[0].line if tokens else stmt.line,
                            f"alias '{name}' of '{afield}' (LL_GUARDED_BY("
                            f"{guarded[afield].guarded_by}), taken at line "
                            f"{decl_line}) used outside the MutexLock "
                            "scope that protected it"))
                        reported.add(name)
                for sub in stmt.blocks:
                    walk(sub, active_locks)
            for lock_id in own_locks:
                active_locks.remove(lock_id)

        # LL_REQUIRES on the definition or any matching declaration means
        # the caller already holds the mutex for the whole body: seed a
        # sentinel lock that never goes out of scope.
        required = list(fn.requires_lock)
        for sig in tu.symbols.functions.get(fn.name, []):
            if sig.class_name == fn.class_name:
                required.extend(sig.requires_lock)
        walk(fn.body, [-1] if required else [])
    return out


# --- rule 4: cross-function narrowing ---------------------------------------


def _resolved_narrow_params(tu: TranslationUnit, name: str):
    """Param-index -> type for params every known signature agrees are
    narrow. None when the name is unknown."""
    fns = tu.symbols.functions.get(name)
    if not fns:
        return None
    narrow: Dict[int, str] = {}
    for idx in range(max(len(f.params) for f in fns)):
        types = {f.params[idx].type_text for f in fns
                 if idx < len(f.params)}
        if types and all(is_narrow_int(t) for t in types):
            narrow[idx] = sorted(types)[0]
    return narrow


def _check_cross_function_narrowing(tu: TranslationUnit) -> List[RuleFinding]:
    out: List[RuleFinding] = []
    for fn in tu.functions:
        if fn.body is None:
            continue
        narrow_locals: Dict[str, str] = {
            p.name: p.type_text for p in fn.params
            if p.name and is_narrow_int(p.type_text)}
        cls = tu.symbols.classes.get(fn.class_name) \
            if fn.class_name else None
        narrow_fields = {
            f.name: f.type_text for f in (cls.fields.values() if cls else [])
            if is_narrow_int(f.type_text)}
        ret_narrow = is_narrow_int(fn.return_type)

        for stmt in walk_blocks(fn.body):
            tokens = stmt.head
            if not tokens:
                continue
            texts = [t.text for t in tokens]
            has_cast = "static_cast" in texts  # already the token rule's job
            if stmt.kind == "decl" and stmt.decl_type and stmt.decl_name:
                if is_narrow_int(stmt.decl_type):
                    narrow_locals[stmt.decl_name] = stmt.decl_type
                # Narrow decl-inits are the token layer's job; skip here.
            # (a) tainted arguments into narrow parameters.
            seen_lines: Set[int] = set()
            for i, t in enumerate(tokens):
                if t.kind != "id" or not _is(_at(tokens, i + 1), "op", "("):
                    continue
                narrow_params = _resolved_narrow_params(tu, t.text)
                if not narrow_params:
                    continue
                close = _matching(tokens, i + 1, "(", ")")
                args = _split_args(tokens[i + 2:close])
                for idx, ptype in narrow_params.items():
                    if idx >= len(args):
                        continue
                    arg_texts = [x.text for x in args[idx]]
                    if "static_cast" in arg_texts:
                        continue
                    time_t, pn_t = _taint(args[idx])
                    if (time_t or pn_t) and t.line not in seen_lines:
                        what = "time value" if time_t else "packet number"
                        out.append(RuleFinding(
                            t.line,
                            f"{what} narrowed through call: argument "
                            f"{idx + 1} of '{t.text}()' has {ptype} "
                            "parameter (widen the parameter or make the "
                            "truncation an explicit checked cast)"))
                        seen_lines.add(t.line)
            # (b) tainted returns out of a narrow-returning function.
            if stmt.kind == "return" and ret_narrow and not has_cast:
                time_t, pn_t = _taint(tokens)
                if time_t or pn_t:
                    what = "time value" if time_t else "packet number"
                    out.append(RuleFinding(
                        stmt.line,
                        f"{what} narrowed through return: '{fn.qualname}' "
                        f"returns {fn.return_type} (widen the return type "
                        "or make the truncation explicit)"))
            # (c) tainted assignments into earlier-declared narrow slots.
            if stmt.kind == "expr" and len(tokens) >= 3 and \
                    tokens[0].kind == "id" and tokens[1].kind == "op" and \
                    tokens[1].text in ("=", "+=", "-=", "*=") and \
                    not has_cast:
                target = tokens[0].text
                ttype = narrow_locals.get(target) or \
                    narrow_fields.get(target)
                if ttype is not None:
                    time_t, pn_t = _taint(tokens[2:])
                    if time_t or pn_t:
                        what = "time value" if time_t else "packet number"
                        out.append(RuleFinding(
                            stmt.line,
                            f"{what} narrowed through assignment: "
                            f"'{target}' was declared {ttype} (widen the "
                            "declaration — the token rule only sees "
                            "decl-inits, this flowed in later)"))
    return out


# --- rule 5: nondeterministic-iteration-escape ------------------------------

_ORDER_SINK_FNS = frozenset({
    "push_back", "emplace_back", "append", "emit", "write", "print",
    "printf", "fprintf", "log", "record", "add_row", "row", "push",
})


def _order_sensitive_stmt(tokens: Sequence[Token],
                          string_names: Set[str]) -> Optional[str]:
    for i, t in enumerate(tokens):
        if t.kind == "op" and t.text == "<<":
            prev = _at(tokens, i - 1)
            if prev is not None and (prev.kind in ("id", "str")
                                     or _is(prev, "op", ")")):
                return "streams into ordered output via '<<'"
        if t.kind == "id" and t.text in _ORDER_SINK_FNS and \
                _is(_at(tokens, i + 1), "op", "("):
            return f"appends via '{t.text}()' (sequence order = " \
                   "iteration order)"
        if t.kind == "op" and t.text == "+=" and i > 0 and \
                tokens[i - 1].kind == "id" and \
                tokens[i - 1].text in string_names:
            return f"concatenates onto string '{tokens[i - 1].text}'"
    return None


def _check_nondet_iteration_escape(tu: TranslationUnit) -> List[RuleFinding]:
    out: List[RuleFinding] = []
    unordered = set(tu.symbols.unordered_names)

    for fn in tu.functions:
        if fn.body is None:
            continue
        string_names: Set[str] = set()
        local_unordered = set(unordered)
        for p in fn.params:
            if p.name and "unordered_" in p.type_text:
                local_unordered.add(p.name)
            if p.name and "string" in p.type_text:
                string_names.add(p.name)
        for stmt in walk_blocks(fn.body):
            if stmt.kind == "decl" and stmt.decl_type and stmt.decl_name:
                base = stmt.decl_type
                if "unordered_" in base:
                    local_unordered.add(stmt.decl_name)
                if "string" in base:
                    string_names.add(stmt.decl_name)
        cls = tu.symbols.classes.get(fn.class_name) if fn.class_name else None
        for f in (cls.fields.values() if cls else []):
            if "string" in f.type_text:
                string_names.add(f.name)

        for stmt in walk_blocks(fn.body):
            if stmt.kind != "rangefor" or not stmt.range_expr:
                continue
            range_ids = [t.text for t in stmt.range_expr if t.kind == "id"]
            is_unordered = any(x in local_unordered for x in range_ids) or \
                any("unordered" in x for x in range_ids)
            if not is_unordered:
                continue
            for body in stmt.blocks:
                for inner in walk_blocks(body):
                    if inner.kind not in ("expr", "decl", "return"):
                        continue
                    why = _order_sensitive_stmt(inner.head, string_names)
                    if why is not None:
                        out.append(RuleFinding(
                            inner.line,
                            f"unordered-container iteration order escapes: "
                            f"loop at line {stmt.line} {why} — iterate a "
                            "sorted snapshot (or sort before emitting)"))
    return out


# --- registry ----------------------------------------------------------------

AST_RULES = [
    ASTRule("deferred-raw-this", _src_only, _check_deferred_raw_this,
            "Lambda capturing raw `this`/`&`/`=`/&member_ escapes into a "
            "deferred-execution call (schedule/post/defer); capture a weak "
            "live-token instead (PR 1 use-after-free class)."),
    ASTRule("iterator-invalidation", _everywhere,
            _check_iterator_invalidation,
            "Iterator/reference into a container used after a mutating "
            "call invalidated it — tracked across statements, loops, and "
            "range-for back edges (PR 2 bug class)."),
    ASTRule("guarded-field-alias", _everywhere, _check_guarded_field_alias,
            "Pointer/reference to an LL_GUARDED_BY field taken without "
            "the lock, used after the MutexLock scope ends, or returned "
            "from a ref/ptr method (-Wthread-safety misses aliases)."),
    ASTRule("cross-function-narrowing-time-arith", _everywhere,
            _check_cross_function_narrowing,
            "64->32-bit time/packet-number truncation through call "
            "arguments, returns, and later assignments (the token rule "
            "only sees single expressions)."),
    ASTRule("nondeterministic-iteration-escape", _everywhere,
            _check_nondet_iteration_escape,
            "Unordered-container iteration whose order flows into "
            "trace/bench/report output (push_back, '<<', string +=)."),
]

AST_RULE_NAMES = tuple(r.name for r in AST_RULES)
AST_RULES_BY_NAME = {r.name: r for r in AST_RULES}
