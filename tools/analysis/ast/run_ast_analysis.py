#!/usr/bin/env python3
"""CLI entry point for the flow-sensitive AST analyzer.

    tools/analysis/ast/run_ast_analysis.py [--json OUT] [--rules a,b]
        [--frontend auto|internal|clang] [--allowlist FILE]
        [--budget-seconds N] PATH...

Exit codes: 0 clean (or loud skip when `--frontend clang` finds no
libclang), 1 unsuppressed findings, 2 usage/configuration error.
"""

import sys
from pathlib import Path

# Drop the script's own directory (tools/analysis/ast/) and its parent from
# sys.path: both would shadow stdlib modules (`ast` itself, and this
# package's engine/rules/parser files). The package is reached via tools/.
_bad = {str(Path(__file__).resolve().parent),
        str(Path(__file__).resolve().parents[1]), ""}
sys.path[:] = [p for p in sys.path if p not in _bad]
sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from analysis.ast import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv))
