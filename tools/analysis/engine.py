"""Analyzer engine: file discovery, suppressions, reporting.

Public surface (re-exported from tools/analysis/__init__.py):

  analyze_paths(paths, ...) -> AnalysisResult
  main(argv) -> exit code      (0 clean, 1 findings, 2 usage/config error)

Suppression syntax, valid in // or /* */ comments:

  // ll-analysis: allow(rule-a, rule-b) reason the finding is intended

A suppression covers its own line and the next line that carries code
(so it can sit on the offending line or directly above it). An unknown
rule name inside allow(...) or a missing reason is a hard configuration
error (exit 2), never a silent no-op: a typo'd suppression must not
rot into a finding leak.
"""

from __future__ import annotations

import json
import re
import sys
import time
from pathlib import Path
from typing import (Dict, Iterable, List, NamedTuple, Optional, Sequence,
                    Set, Tuple)

from .lexer import Comment, tokenize
from .rules import ALL_RULES, LEGACY_RULES, RULES_BY_NAME, Rule

ALL_RULE_NAMES = tuple(r.name for r in ALL_RULES)
LEGACY_RULE_NAMES = tuple(r.name for r in LEGACY_RULES)

_SOURCE_SUFFIXES = (".cc", ".cpp", ".cxx", ".h", ".hpp", ".hh")

# Directory roots (relative to the repo root) the analyzer will walk; a
# directory argument outside these is a usage error so nobody "scans" a
# build tree by accident.
ALLOWED_ROOTS = ("src", "bench", "tests", "tools", "examples")

# Directory *components* skipped during walks, wherever they appear.
_SKIP_COMPONENT = re.compile(r"^(build.*|\.git|_deps|\.cache)$")

# Fixture trees are intentionally full of findings; they are skipped by
# directory walks and only analyzed when a CLI argument points inside them
# (which is exactly what the self-tests do).
_FIXTURE_FRAGMENTS = ("tools/lint_fixtures", "tools/analysis/fixtures",
                      "tools/analysis/ast/fixtures",
                      "tools/analysis/ipa/fixtures")

_SUPPRESS_RE = re.compile(
    r"ll-analysis:\s*allow\(\s*([^)]*?)\s*\)\s*(.*)", re.DOTALL
)


class AnalysisError(Exception):
    """Configuration error (bad suppression, bad path): exit code 2."""


def _known_rule_names() -> set:
    """Token-layer plus AST-layer plus IPA-layer rule names. Suppressions
    and allowlists may name a rule from any layer (the AST and IPA engines
    reuse this file's machinery), so validation always runs against the
    union. Imported lazily: analysis.ast / analysis.ipa import back into
    this module."""
    names = set(RULES_BY_NAME)
    try:
        from .ast.rules import AST_RULES_BY_NAME
        names |= set(AST_RULES_BY_NAME)
    except ImportError:
        pass
    try:
        from .ipa.rules import IPA_RULES_BY_NAME
        names |= set(IPA_RULES_BY_NAME)
    except ImportError:
        pass
    return names


class Finding(NamedTuple):
    path: str      # repo-relative, '/'-separated
    line: int
    rule: str
    message: str
    snippet: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}: " \
               f"{self.snippet}"


class AnalysisResult(NamedTuple):
    findings: List[Finding]
    suppressed: int
    files_scanned: int
    # Per-rule breakdowns (additive; the report stays "version": 1).
    # suppressed_by_rule counts inline + allowlist suppressions keyed by
    # rule name; rule_elapsed is wall-clock seconds spent inside each
    # rule's check() summed over files. Defaults keep older construction
    # sites (three positional fields) working unchanged.
    suppressed_by_rule: Dict[str, int] = {}
    rule_elapsed: Dict[str, float] = {}

    def to_json(self) -> dict:
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "suppressed_by_rule": dict(sorted(
                self.suppressed_by_rule.items())),
            "rule_elapsed_seconds": {
                name: round(secs, 4)
                for name, secs in sorted(self.rule_elapsed.items())},
            "findings": [f._asdict() for f in self.findings],
        }


def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]


def _parse_suppressions(
    comments: Sequence[Comment], tokens: Sequence, path: str,
    known_rules: Set[str],
) -> Set[Tuple[int, str]]:
    """Returns the set of (line, rule) pairs suppressed in this file."""
    suppressed: Set[Tuple[int, str]] = set()
    for c in comments:
        if "ll-analysis" not in c.text:
            continue
        m = _SUPPRESS_RE.search(c.text)
        if not m:
            raise AnalysisError(
                f"{path}:{c.line}: malformed ll-analysis comment; expected "
                "'ll-analysis: allow(<rule>[, <rule>...]) <reason>'")
        rule_list = [r.strip() for r in m.group(1).split(",") if r.strip()]
        reason = " ".join(m.group(2).split())
        if not rule_list:
            raise AnalysisError(
                f"{path}:{c.line}: ll-analysis allow() names no rules")
        for rule in rule_list:
            if rule not in known_rules:
                raise AnalysisError(
                    f"{path}:{c.line}: unknown rule '{rule}' in ll-analysis "
                    f"suppression (known: {', '.join(sorted(known_rules))})")
        if not reason:
            raise AnalysisError(
                f"{path}:{c.line}: ll-analysis suppression for "
                f"{', '.join(rule_list)} carries no reason; every "
                "suppression must say why")
        # A suppression covers its own line plus the statement that starts
        # on the next code line (through its terminating ';'/'{'/'}' at
        # depth 0), so multi-line expressions stay covered.
        covered = {c.line}
        start = next(
            (k for k, t in enumerate(tokens) if t.line > c.line), None)
        if start is not None:
            depth = 0
            for t in tokens[start:]:
                covered.add(t.line)
                if t.kind == "op":
                    if t.text in ("(", "["):
                        depth += 1
                    elif t.text in (")", "]"):
                        depth -= 1
                    elif t.text in (";", "{", "}") and depth <= 0:
                        break
        for rule in rule_list:
            for ln in covered:
                suppressed.add((ln, rule))
    return suppressed


def analyze_file(
    fs_path: Path, rel: str, rules: Sequence[Rule],
    suppressed_by_rule: Optional[Dict[str, int]] = None,
    rule_elapsed: Optional[Dict[str, float]] = None,
) -> Tuple[List[Finding], int]:
    """Analyzes one file; returns (findings, suppressed_count).

    When the caller passes accumulator dicts, inline suppressions are
    counted per rule name and rule.check() wall-clock is summed per rule.
    """
    text = fs_path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    tokens, comments = tokenize(text)
    # Suppressions must name *any* known rule (any layer), not just the
    # active subset, so a legacy-only run (the lint shim) doesn't choke on
    # suppressions for newer or AST-layer rules.
    suppressions = _parse_suppressions(
        comments, tokens, rel, _known_rule_names())
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies_to(rel):
            continue
        started = time.monotonic()
        hits = list(rule.check(tokens))
        if rule_elapsed is not None:
            rule_elapsed[rule.name] = (
                rule_elapsed.get(rule.name, 0.0)
                + (time.monotonic() - started))
        for line, message in hits:
            if (line, rule.name) in suppressions:
                suppressed += 1
                if suppressed_by_rule is not None:
                    suppressed_by_rule[rule.name] = \
                        suppressed_by_rule.get(rule.name, 0) + 1
                continue
            snippet = lines[line - 1].strip() if 0 < line <= len(lines) \
                else ""
            findings.append(Finding(rel, line, rule.name, message, snippet))
    return findings, suppressed


def _iter_source_files(root: Path, arg: Path) -> Iterable[Path]:
    if arg.is_file():
        yield arg
        return
    in_fixtures = any(
        frag in arg.resolve().as_posix() for frag in _FIXTURE_FRAGMENTS
    )
    for p in sorted(arg.rglob("*")):
        if not p.is_file() or p.suffix not in _SOURCE_SUFFIXES:
            continue
        try:
            rel_parts = p.relative_to(arg).parts
        except ValueError:
            rel_parts = p.parts
        if any(_SKIP_COMPONENT.match(part) for part in rel_parts[:-1]):
            continue
        if not in_fixtures and any(
            frag in p.as_posix() for frag in _FIXTURE_FRAGMENTS
        ):
            continue
        yield p


def _check_allowed(root: Path, arg: Path) -> None:
    try:
        rel = arg.resolve().relative_to(root)
    except ValueError:
        return  # outside the repo (temp fixture dirs in tests): allowed as-is
    if rel.parts and rel.parts[0] not in ALLOWED_ROOTS:
        raise AnalysisError(
            f"refusing to analyze '{arg}': analyzer roots are "
            f"{', '.join(ALLOWED_ROOTS)} (build trees and dot-dirs are "
            "never scanned)")


def _load_allowlist(path: Path) -> List[Tuple[str, str, Optional[str]]]:
    """tools/lint_allowlist.txt: '<rule> <path-substring> [<line-substr>]'."""
    entries = []
    if not path.is_file():
        return entries
    for raw in path.read_text(encoding="utf-8").splitlines():
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split(None, 2)
        if len(parts) < 2:
            raise AnalysisError(
                f"{path}: malformed allowlist line: {raw!r}")
        rule, frag = parts[0], parts[1]
        line_frag = parts[2] if len(parts) > 2 else None
        if rule not in _known_rule_names():
            raise AnalysisError(
                f"{path}: unknown rule '{rule}' in allowlist")
        entries.append((rule, frag, line_frag))
    return entries


def _allowlist_match(
    f: Finding, entries: Sequence[Tuple[str, str, Optional[str]]],
) -> Optional[int]:
    """Index of the first matching allowlist entry, or None."""
    for k, (rule, frag, line_frag) in enumerate(entries):
        if f.rule != rule or frag not in f.path:
            continue
        if line_frag is None or line_frag in f.snippet:
            return k
    return None


def _allowlisted(
    f: Finding, entries: Sequence[Tuple[str, str, Optional[str]]],
) -> bool:
    return _allowlist_match(f, entries) is not None


def _stale_entry_trace(
    frag: str, line_frag: Optional[str],
    scanned: Sequence[Tuple[str, Path]],
) -> str:
    """Where a stale allowlist entry last matched: the file:line whose
    content still carries the entry's line fragment (the code survives but
    the rule no longer fires there), or a note that the fragment is gone
    entirely. Only runs on the error path, so re-reading files is fine."""
    candidates = [(rel, fs) for rel, fs in scanned if frag in rel]
    if not candidates:
        return "path fragment matches no scanned file"
    if line_frag is None:
        rel = candidates[0][0]
        extra = f" (+{len(candidates) - 1} more)" if len(candidates) > 1 \
            else ""
        return f"path still matches {rel}{extra}, rule fired nowhere in it"
    for rel, fs in candidates:
        text = fs.read_text(encoding="utf-8", errors="replace")
        last = None
        for n, line in enumerate(text.splitlines(), 1):
            if line_frag in line:
                last = n
        if last is not None:
            return (f"line content last matched at {rel}:{last}, "
                    "rule no longer fires there")
    return (f"line fragment no longer appears in any matching file "
            f"(checked {', '.join(rel for rel, _ in candidates)})")


def check_stale_allowlist(
    entries: Sequence[Tuple[str, str, Optional[str]]],
    used: Set[int], active_rule_names: Set[str],
    scanned: Sequence[Tuple[str, Path]] = (),
) -> None:
    """Hard-errors on entries whose rule was active this run yet matched
    nothing — stale suppressions must not rot silently. Entries for rules
    outside the active set (e.g. semantic-rule entries during a
    --legacy-only lint run) are left alone. When the caller passes the
    scanned (rel, fs_path) list, each stale entry's message pins the
    file:line its fragment last matched, so the reporter can tell "code
    deleted" from "rule stopped firing" without a manual grep."""
    stale = [entries[k] for k in range(len(entries))
             if k not in used and entries[k][0] in active_rule_names]
    if stale:
        rendered = ", ".join(
            "'" + " ".join(x for x in (r, frag, lf) if x) + "'"
            + (f" [{_stale_entry_trace(frag, lf, scanned)}]"
               if scanned else "")
            for r, frag, lf in stale)
        raise AnalysisError(
            f"stale allowlist entries matched no finding: {rendered} — "
            "delete them (a stale suppression hides the next real "
            "finding at that site)")


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
    allowlist: Optional[Path] = None,
) -> AnalysisResult:
    root = (root or repo_root()).resolve()
    rules = list(rules) if rules is not None else list(ALL_RULES)
    entries = _load_allowlist(allowlist) if allowlist else []
    findings: List[Finding] = []
    used_entries: Set[int] = set()
    suppressed = 0
    suppressed_by_rule: Dict[str, int] = {}
    rule_elapsed: Dict[str, float] = {}
    scanned_files: List[Tuple[str, Path]] = []
    for arg in paths:
        p = Path(arg)
        if not p.exists():
            raise AnalysisError(f"no such path: {arg}")
        _check_allowed(root, p)
        for f in _iter_source_files(root, p):
            try:
                rel = f.resolve().relative_to(root).as_posix()
            except ValueError:
                rel = f.as_posix()
            file_findings, file_suppressed = analyze_file(
                f, rel, rules, suppressed_by_rule, rule_elapsed)
            scanned_files.append((rel, f))
            suppressed += file_suppressed
            for finding in file_findings:
                k = _allowlist_match(finding, entries)
                if k is not None:
                    used_entries.add(k)
                    suppressed += 1
                    suppressed_by_rule[finding.rule] = \
                        suppressed_by_rule.get(finding.rule, 0) + 1
                else:
                    findings.append(finding)
    check_stale_allowlist(entries, used_entries, {r.name for r in rules},
                          scanned_files)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return AnalysisResult(findings, suppressed, len(scanned_files),
                          suppressed_by_rule, rule_elapsed)


def main(argv: Sequence[str]) -> int:
    args = list(argv[1:])
    json_out: Optional[Path] = None
    rule_filter: Optional[List[Rule]] = None
    allowlist: Optional[Path] = None
    paths: List[str] = []
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--json":
            i += 1
            if i >= len(args):
                print("--json needs a file argument", file=sys.stderr)
                return 2
            json_out = Path(args[i])
        elif a == "--rules":
            i += 1
            if i >= len(args):
                print("--rules needs a comma-separated list",
                      file=sys.stderr)
                return 2
            names = [x.strip() for x in args[i].split(",") if x.strip()]
            unknown = [x for x in names if x not in RULES_BY_NAME]
            if unknown:
                print(f"unknown rule(s): {', '.join(unknown)}",
                      file=sys.stderr)
                return 2
            rule_filter = [RULES_BY_NAME[x] for x in names]
        elif a == "--legacy-only":
            rule_filter = list(LEGACY_RULES)
        elif a == "--allowlist":
            i += 1
            if i >= len(args):
                print("--allowlist needs a file argument", file=sys.stderr)
                return 2
            allowlist = Path(args[i])
        elif a == "--list-rules":
            for r in ALL_RULES:
                print(f"{r.name}: {r.doc}")
            return 0
        elif a in ("-h", "--help"):
            print(__doc__)
            print("usage: run_analysis.py [--json OUT] [--rules a,b] "
                  "[--legacy-only] [--allowlist FILE] PATH...")
            return 0
        elif a.startswith("-"):
            print(f"unknown option: {a}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
        i += 1
    if not paths:
        print("usage: run_analysis.py [--json OUT] PATH...", file=sys.stderr)
        return 2
    try:
        result = analyze_paths(paths, rules=rule_filter, allowlist=allowlist)
    except AnalysisError as e:
        print(f"analysis error: {e}", file=sys.stderr)
        return 2
    for f in result.findings:
        print(f.render())
    if json_out is not None:
        json_out.write_text(
            json.dumps(result.to_json(), indent=2) + "\n", encoding="utf-8")
    print(
        f"analysis: {len(result.findings)} finding(s), "
        f"{result.suppressed} suppressed, "
        f"{result.files_scanned} file(s) scanned",
        file=sys.stderr)
    return 1 if result.findings else 0
