// Fixture: container-mutation-in-loop must fire on every loop below.
// Expected findings: 3 (kept in sync with tests/test_analysis_selftest.py).
#include <map>
#include <vector>

struct State {
  std::vector<int> values;
};

void grow_while_iterating(std::vector<int>& items) {
  for (int x : items) {
    items.push_back(x);  // finding 1: push_back invalidates the iterator
  }
}

void erase_while_iterating(std::map<int, int>& table) {
  for (const auto& kv : table) {
    table.erase(kv.first);  // finding 2: erase under range-for
  }
}

void clear_member_while_iterating(State& state) {
  for (int v : state.values) {
    (void)v;
    state.values.clear();  // finding 3: member container cleared in loop
  }
}
