// Fixture: missing-lock-annotation must flag the unannotated fields.
// Expected findings: 2 (kept in sync with tests/test_analysis_selftest.py).
#include <atomic>
#include <mutex>
#include <string>

class Tracker {
 public:
  void bump();

 private:
  std::mutex mu_;
  int counter_ = 0;        // finding 1: shares the class with mu_
  std::string name_;       // finding 2: shares the class with mu_
  std::atomic<int> hits_;  // exempt: atomic
  const int limit_ = 8;    // exempt: immutable
  static constexpr int kMax = 4;  // exempt: constexpr
};

class NoMutexHere {
  int fine_without_annotations_ = 0;
};
