// Fixture: narrowing-time-arith must fire on every construct below.
// Expected findings: 6 (kept in sync with tests/test_analysis_selftest.py).
#include <cstdint>

struct Duration {
  std::int64_t count() const { return v; }
  std::int64_t v = 0;
};

int narrow_static_cast(std::int64_t rtt_us) {
  return static_cast<int>(rtt_us);  // finding 1: truncating cast
}

std::uint32_t narrow_count(Duration d) {
  return static_cast<std::uint32_t>(d.count());  // finding 2: truncating
}

std::uint64_t sign_mix(std::int64_t delay_ms) {
  return static_cast<std::uint64_t>(delay_ms);  // finding 3: signed→unsigned
}

int c_style(std::int64_t elapsed_us) {
  return (int)elapsed_us;  // finding 4: C-style truncating cast
}

int decl_init(std::int64_t smoothed_rtt_us) {
  int rtt = smoothed_rtt_us;  // finding 5: narrow decl from time expr
  return rtt;
}

int packet_number(std::uint64_t largest_acked) {
  return static_cast<int>(largest_acked);  // finding 6: pn truncation
}
