// Fixture: wall-clock reads inside a simulation layer (the path carries
// "sim/"). Each read must fire BOTH the everywhere-scoped legacy
// `wall-clock` rule and the layer-scoped `wall-clock-outside-obs` rule.
#include <chrono>
#include <cstdint>

std::int64_t event_timestamp_ns() {
  auto now = std::chrono::steady_clock::now();  // finding x2
  return now.time_since_epoch().count();
}

std::int64_t calendar_seed() {
  return std::chrono::system_clock::now()  // finding x2
      .time_since_epoch()
      .count();
}
