// Fixture: the analyzer must stay silent on all of this — rule look-alikes,
// properly annotated classes, and a demonstrative inline suppression.
#include <cstdint>
#include <mutex>
#include <vector>

#define LL_GUARDED_BY(x)

struct Duration {
  std::int64_t count() const { return v; }
  std::int64_t v = 0;
};

double widening_is_fine(std::int64_t rtt_us) {
  return static_cast<double>(rtt_us);  // double holds the full range
}

std::int64_t same_width_is_fine(Duration d) {
  return d.count();  // no cast, no narrowing
}

int suppressed_with_reason(std::int64_t rtt_us) {
  // ll-analysis: allow(narrowing-time-arith) fixture demonstrating the suppression syntax
  return static_cast<int>(rtt_us);
}

void mutating_a_different_container(const std::vector<int>& src,
                                    std::vector<int>& dst) {
  for (int x : src) {
    dst.push_back(x);  // dst is not the container being iterated
  }
}

struct Trace {
  std::vector<int> events;
};

void member_name_collision(const std::vector<int>& events, Trace& trace) {
  for (int e : events) {
    trace.events.push_back(e);  // trace.events != the iterated `events`
  }
}

class FullyAnnotated {
 public:
  void set(int v);

 private:
  std::mutex mu_;
  int value_ LL_GUARDED_BY(mu_) = 0;
  const int limit_ = 4;
};
