// Fixture: the obs layer is exempt from `wall-clock-outside-obs` (the path
// carries "obs/", not a sim-layer fragment), so only the everywhere-scoped
// legacy `wall-clock` rule needs a suppression here — exactly how
// src/obs/profiler.cc carries the one sanctioned wall-clock read.
#include <chrono>
#include <cstdint>

std::int64_t profiler_wall_now_ns() {
  // ll-analysis: allow(wall-clock) the profiler is the sanctioned wall-clock reader
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
