// Fixture: suppression-scope edge cases. Zero findings, exactly 4
// suppressed here (pinned by tests/test_analysis_selftest.py):
//  1. a multi-line statement is covered end to end — it fires on both
//     its declaration and continuation lines under one suppression;
//  2. the scope jumps preprocessor directives (which produce no tokens),
//     so a suppression above a macro covers the next real statement;
//  3. a suppression on the last code line of the file still parses.
#include <cstdint>

int multiline(std::int64_t smoothed_rtt_us) {
  // ll-analysis: allow(narrowing-time-arith) fixture: multi-line statement scope
  int rtt =
      static_cast<int>(
          smoothed_rtt_us);
  return rtt;
}

int macro_jump(std::int64_t elapsed_us) {
  // ll-analysis: allow(narrowing-time-arith) fixture: scope jumps the token-less directive
#define LL_FIXTURE_NOOP(x) (x)
  return (int)LL_FIXTURE_NOOP(elapsed_us);
#undef LL_FIXTURE_NOOP
}

int last_line(std::int64_t delay_us) {
  // ll-analysis: allow(narrowing-time-arith) fixture: suppression near EOF
  return static_cast<int>(delay_us);
}
