// Fixture: a suppression without a reason must be a hard error (exit 2);
// every suppression has to say why the finding is intended.
int f(long long rtt_us) {
  // ll-analysis: allow(narrowing-time-arith)
  return static_cast<int>(rtt_us);
}
