// Fixture: an unknown rule name inside allow(...) must be a hard error
// (exit 2), never a silent no-op.
int f(long long rtt_us) {
  // ll-analysis: allow(no-such-rule) typo'd suppressions must not fail open
  return static_cast<int>(rtt_us);
}
