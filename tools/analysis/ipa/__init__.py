"""longlook interprocedural analyzer (tools/analysis/ipa).

The whole-program layer above the CFG-lite AST layer: a call graph
(direct calls, method calls resolved through the merged symbol table,
callback-registration edges for deferred lambdas), per-function summaries
(locks acquired/held, pool handles released, callback parameters that
escape into the event queue, blocking operations), and four rules for the
bug classes that only appear across call boundaries. Shares the token
engine's Finding format, --json report shape, exit codes, inline
`ll-analysis: allow(...)` suppressions, and stale-allowlist hard errors.
See docs/static_analysis.md for the rule catalog.
"""

from .engine import analyze_paths_ipa, main  # noqa: F401
from .rules import IPA_RULES, IPA_RULES_BY_NAME  # noqa: F401
