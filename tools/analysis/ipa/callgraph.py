"""Whole-program model: call graph + per-function summaries.

Built on the astmodel IR both AST frontends produce. Every scanned file's
translation unit joins one Program; function definitions become nodes,
call expressions become edges (kind 'direct' for bare calls, 'method' for
x.f()/x->f()/C::f(), 'callback' for lambdas escaping into the deferred-
execution functions), and a monotone fixed point propagates the facts the
rules need across calls:

  all_acquires        every mutex a call into this function may acquire
  may_block           a blocking operation (cv wait, SweepRunner job
                      submission, file I/O, sleeps) is reachable
  releases_params     parameter indices the function (transitively)
                      releases back into an ObjectPool/BytesPool or
                      cancels on the Simulator
  registers_params    callback-typed parameter indices that (transitively)
                      escape into a deferred-execution registration

Resolution is deliberately conservative: a callee name that maps to more
than one known definition resolves only when the receiver's type picks
one; otherwise the edge stays unresolved and rules degrade to silence,
never to cross-class false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lexer import Token
from ..rules import _at, _is, _matching
from ..ast import parser as internal_parser
from ..ast.astmodel import Block, FunctionInfo, Stmt, TranslationUnit
from ..ast.rules import _DEFER_FNS, _find_lambdas, _split_args

# Lock-holder declaration types (RAII): scope = rest of enclosing block.
_LOCK_DECL_TYPES = ("MutexLock", "lock_guard", "unique_lock", "scoped_lock")

# Blocking free functions: C stdio and thread sleeps. Method-call variants
# are matched by receiver type below.
_BLOCKING_FREE_FNS = frozenset({
    "fopen", "fwrite", "fread", "fprintf", "vfprintf", "fputs", "fputc",
    "fflush", "fclose", "fsync", "fgets", "fscanf",
    "sleep_for", "sleep_until", "usleep", "nanosleep",
})

_POOL_RELEASE_METHODS = frozenset({"release", "invalidate"})

_CALLBACK_TYPE_HINT = ("Callback", "function")

_CONTROL_NOT_CALLS = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "static_assert", "decltype", "catch", "noexcept", "new", "delete",
    "throw", "case", "do", "else", "alignas",
})


@dataclass
class CallSite:
    callee: str                      # unqualified name as spelled
    line: int
    kind: str                        # 'direct' | 'method' | 'callback'
    receiver: Optional[str]          # base identifier of x.f()/x->f()
    receiver_type: Optional[str]     # resolved type text, when known
    args: List[List[Token]]
    arg_names: List[Optional[str]]   # arg k's single core identifier
    held: Tuple[str, ...]            # normalized lock ids held here
    resolved: Optional["FunctionNode"] = None


@dataclass
class LockAcquire:
    mutex: str                       # normalized 'Class::member' or name
    line: int
    held: Tuple[str, ...]            # locks already held at this acquire


@dataclass
class BlockingOp:
    what: str                        # e.g. "CondVar::wait", "fwrite()"
    line: int
    held: Tuple[str, ...]
    waited_mutex: Optional[str] = None   # cv.wait(lk): lk's mutex


@dataclass
class ReleaseSite:
    var: str                         # handle variable released
    line: int
    kind: str                        # 'release' | 'cancel'


@dataclass
class Summary:
    acquires: List[LockAcquire] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    blocking: List[BlockingOp] = field(default_factory=list)
    releases: List[ReleaseSite] = field(default_factory=list)
    releases_params: Set[int] = field(default_factory=set)
    registers_params: Set[int] = field(default_factory=set)
    # Fixed-point facts:
    all_acquires: Set[str] = field(default_factory=set)
    may_block: Optional[str] = None


@dataclass
class FunctionNode:
    uid: str                         # rel:line:qualname — unique
    rel: str
    fn: FunctionInfo
    tu: TranslationUnit
    summary: Summary = field(default_factory=Summary)
    is_callback: bool = False        # synthetic node for a deferred lambda


class Program:
    def __init__(self, tus: Sequence[TranslationUnit]):
        self.tus = list(tus)
        self.nodes: List[FunctionNode] = []
        self.by_name: Dict[str, List[FunctionNode]] = {}
        for tu in self.tus:
            for fn in tu.functions:
                if fn.body is None:
                    continue
                node = FunctionNode(
                    uid=f"{tu.rel}:{fn.line}:{fn.qualname}",
                    rel=tu.rel, fn=fn, tu=tu)
                self.nodes.append(node)
                self.by_name.setdefault(fn.name, []).append(node)
        for node in list(self.nodes):
            _summarize(node, self)
        _propagate(self)

    def resolve(self, cs: CallSite) -> Optional[FunctionNode]:
        """Unambiguous callee node for a call site, or None."""
        cands = self.by_name.get(cs.callee, ())
        if not cands:
            return None
        if cs.receiver_type:
            # A known receiver type is authoritative: a name-only match
            # against a method of some other class (CondVar::wait vs a
            # SweepRunner::wait) must not resolve.
            typed = [n for n in cands
                     if n.fn.class_name and n.fn.class_name in
                     cs.receiver_type]
            return typed[0] if len(typed) == 1 else None
        if len(cands) == 1:
            return cands[0]
        return None


# --- identity helpers --------------------------------------------------------


def _type_class(type_text: str) -> Optional[str]:
    """'const obs::Metrics&' -> 'Metrics'; last named segment of a type."""
    words = type_text.replace("*", " ").replace("&", " ").split()
    words = [w for w in words if w not in ("const", "volatile", "struct",
                                           "class", "typename")]
    if not words:
        return None
    return words[-1].split("<")[0].split("::")[-1] or None


class _Env:
    """Name -> type text for the walk: params, fields, then locals as
    their declarations are passed."""

    def __init__(self, node: FunctionNode):
        self.types: Dict[str, str] = {}
        self.node = node
        cls = node.fn.class_name
        info = node.tu.symbols.classes.get(cls) if cls else None
        self.class_info = info
        if info:
            for f in info.fields.values():
                self.types[f.name] = f.type_text
        for p in node.fn.params:
            self.types[p.name] = p.type_text
        # MutexLock local name -> normalized mutex it holds.
        self.lock_vars: Dict[str, str] = {}

    def see_decl(self, stmt: Stmt) -> None:
        if stmt.kind == "decl" and stmt.decl_name and stmt.decl_type:
            self.types[stmt.decl_name] = stmt.decl_type
        elif stmt.kind == "rangefor" and stmt.loop_var:
            self.types[stmt.loop_var] = stmt.loop_var_type or ""

    def type_of(self, name: str) -> Optional[str]:
        return self.types.get(name)

    def is_field(self, name: str) -> bool:
        return bool(self.class_info and (
            name in self.class_info.fields
            or name in self.class_info.mutexes))


def _normalize_mutex(tokens: Sequence[Token], env: _Env) -> str:
    """Mutex identity from an acquisition expression: 'Class::member' when
    the owner's type is known, a dotted chain otherwise. Strips &, *,
    std::move and a leading this->."""
    texts = [t.text for t in tokens
             if not (t.kind == "op" and t.text in ("&", "*", "(", ")"))]
    texts = [x for x in texts if x not in ("std", "move", "::")]
    while texts and texts[0] == "this":
        texts = texts[1:]
        if texts and texts[0] in (".", "->"):
            texts = texts[1:]
    ids = [x for x in texts if x not in (".", "->")]
    if not ids:
        return "<unknown-mutex>"
    member = ids[-1]
    if len(ids) == 1:
        if env.is_field(member) and env.node.fn.class_name:
            return f"{env.node.fn.class_name}::{member}"
        return member
    base = ids[-2]
    base_type = env.type_of(base)
    cls = _type_class(base_type) if base_type else None
    if cls:
        return f"{cls}::{member}"
    return ".".join(ids)


def _core_arg_name(arg: Sequence[Token]) -> Optional[str]:
    """The single identifier an argument reduces to, ignoring std::move
    and address-of — None for anything more structured."""
    ids = [t.text for t in arg if t.kind == "id"
           and t.text not in ("std", "move")]
    ops = [t.text for t in arg if t.kind == "op"
           and t.text not in ("&", "(", ")", "::", ",")]
    if len(ids) == 1 and not ops:
        return ids[0]
    return None


def _lambda_body_spans(tokens: Sequence[Token]) -> List[Tuple[int, int]]:
    """Token index ranges of lambda bodies inside a statement head: code
    there runs later, not at this statement, so lock/call facts must not
    attribute it to the current context."""
    spans: List[Tuple[int, int]] = []
    for intro, _caps, after in _find_lambdas(tokens):
        j = after
        if _is(_at(tokens, j), "op", "("):
            j = _matching(tokens, j, "(", ")") + 1
        while _is(_at(tokens, j), "id", "mutable") or \
                _is(_at(tokens, j), "id", "noexcept"):
            j += 1
        if _is(_at(tokens, j), "op", "->"):
            while j < len(tokens) and not _is(tokens[j], "op", "{"):
                j += 1
        if _is(_at(tokens, j), "op", "{"):
            close = _matching(tokens, j, "{", "}")
            spans.append((j, close))
    return spans


def _in_spans(i: int, spans: Sequence[Tuple[int, int]]) -> bool:
    return any(a <= i <= b for a, b in spans)


# --- local summarization -----------------------------------------------------


def _stmt_call_sites(stmt: Stmt, env: _Env,
                     held: Tuple[str, ...]) -> List[CallSite]:
    tokens = stmt.head
    spans = _lambda_body_spans(tokens)
    out: List[CallSite] = []
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.text in _CONTROL_NOT_CALLS:
            continue
        if not _is(_at(tokens, i + 1), "op", "("):
            continue
        if _in_spans(i, spans):
            continue
        close = _matching(tokens, i + 1, "(", ")")
        args = _split_args(tokens[i + 2:close])
        receiver = None
        receiver_type = None
        kind = "direct"
        prev = _at(tokens, i - 1)
        if _is(prev, "op", ".") or _is(prev, "op", "->") or \
                _is(prev, "op", "::"):
            kind = "method"
            base = _at(tokens, i - 2)
            if base is not None and base.kind == "id":
                receiver = base.text
                if _is(prev, "op", "::"):
                    receiver_type = base.text
                else:
                    bt = env.type_of(base.text)
                    receiver_type = bt
        out.append(CallSite(
            callee=t.text, line=t.line, kind=kind, receiver=receiver,
            receiver_type=receiver_type, args=args,
            arg_names=[_core_arg_name(a) for a in args], held=held))
    return out


def releases_in_stmt(stmt: Stmt, env: _Env,
                     program: Optional["Program"],
                     node: FunctionNode) -> List[ReleaseSite]:
    """Pool/event handles this statement releases: direct release(h)/
    invalidate(h) on a pool-typed receiver, cancel(id) on the Simulator,
    and — when `program` is given — calls whose summary says a parameter
    is (transitively) released."""
    out: List[ReleaseSite] = []
    for cs in _stmt_call_sites(stmt, env, ()):
        released_args: List[int] = []
        lowered = (cs.receiver or "").lower()
        rtype = cs.receiver_type or ""
        if cs.callee in _POOL_RELEASE_METHODS and cs.args:
            poolish = "Pool" in rtype or "pool" in lowered
            if not poolish and cs.kind == "direct" and env.class_info:
                # Bare release(x) inside a class that defines one.
                poolish = any(
                    n.fn.class_name == env.node.fn.class_name
                    and n.fn.name == cs.callee
                    for n in (program.by_name.get(cs.callee, ())
                              if program else ()))
            if poolish:
                released_args.append(0)
        elif cs.callee == "cancel" and len(cs.args) == 1:
            simish = "Simulator" in rtype or "sim" in lowered
            if simish:
                released_args.append(0)
        elif program is not None:
            callee = program.resolve(cs)
            if callee is not None and callee.summary.releases_params:
                released_args.extend(
                    k for k in sorted(callee.summary.releases_params)
                    if k < len(cs.args))
        kind = "cancel" if cs.callee == "cancel" else "release"
        for k in released_args:
            var = cs.arg_names[k] if k < len(cs.arg_names) else None
            if var is not None:
                out.append(ReleaseSite(var=var, line=cs.line, kind=kind))
    return out


def _stmt_blocking(stmt: Stmt, env: _Env,
                   held: Tuple[str, ...]) -> List[BlockingOp]:
    tokens = stmt.head
    spans = _lambda_body_spans(tokens)
    out: List[BlockingOp] = []
    for i, t in enumerate(tokens):
        if t.kind != "id" or not _is(_at(tokens, i + 1), "op", "("):
            continue
        if _in_spans(i, spans):
            continue
        prev = _at(tokens, i - 1)
        is_method = _is(prev, "op", ".") or _is(prev, "op", "->")
        base = _at(tokens, i - 2) if is_method else None
        base_type = env.type_of(base.text) if base is not None and \
            base.kind == "id" else None
        if t.text in _BLOCKING_FREE_FNS and not is_method:
            out.append(BlockingOp(f"{t.text}()", t.line, held))
            continue
        if t.text == "wait" and is_method and base is not None:
            btype = base_type or ""
            if "CondVar" in btype or "condition_variable" in btype or \
                    base.text.rstrip("_").endswith("cv") or \
                    base.text.startswith("cv"):
                close = _matching(tokens, i + 1, "(", ")")
                args = _split_args(tokens[i + 2:close])
                waited = None
                if args:
                    lk = _core_arg_name(args[0])
                    if lk is not None:
                        waited = env.lock_vars.get(lk)
                out.append(BlockingOp("CondVar::wait", t.line, held,
                                      waited_mutex=waited))
            elif "SweepRunner" in (base_type or ""):
                out.append(BlockingOp("SweepRunner::wait", t.line, held))
            continue
        if t.text == "submit" and is_method and \
                "SweepRunner" in (base_type or ""):
            out.append(BlockingOp("SweepRunner::submit", t.line, held))
    return out


def _is_lock_decl(stmt: Stmt) -> bool:
    return stmt.kind == "decl" and stmt.decl_type is not None and \
        any(l in stmt.decl_type for l in _LOCK_DECL_TYPES) and \
        bool(stmt.init)


def _walk_summarize(block: Block, held: List[Tuple[str, int]],
                    env: _Env, node: FunctionNode,
                    program: "Program") -> None:
    s = node.summary
    local_held = list(held)
    for stmt in block.stmts:
        held_ids = tuple(m for m, _ln in local_held)
        if _is_lock_decl(stmt):
            mutex = _normalize_mutex(stmt.init or [], env)
            s.acquires.append(LockAcquire(mutex, stmt.line, held_ids))
            local_held.append((mutex, stmt.line))
            if stmt.decl_name:
                env.lock_vars[stmt.decl_name] = mutex
            env.see_decl(stmt)
            continue
        env.see_decl(stmt)
        if stmt.for_init is not None:
            env.see_decl(stmt.for_init)
        if stmt.head:
            s.calls.extend(_stmt_call_sites(stmt, env, held_ids))
            s.blocking.extend(_stmt_blocking(stmt, env, held_ids))
            s.releases.extend(releases_in_stmt(stmt, env, None, node))
        for sub in stmt.blocks:
            _walk_summarize(sub, local_held, env, node, program)


def _callback_nodes(node: FunctionNode, program: "Program") -> None:
    """Synthetic nodes for lambdas escaping into deferred execution, so a
    callback's own body is summarized in callback context (no caller
    locks held) and its calls join the graph with kind 'callback'."""
    for cs in list(node.summary.calls):
        if cs.callee not in _DEFER_FNS:
            continue
        for arg in cs.args:
            for intro, _caps, _after in _find_lambdas(arg):
                spans = _lambda_body_spans(arg)
                if not spans:
                    continue
                open_idx, close_idx = spans[0]
                body, _ = internal_parser.parse_block(list(arg), open_idx)
                lam_fn = FunctionInfo(
                    name=f"<lambda:{node.rel}:{cs.line}>",
                    qualname=f"{node.fn.qualname}::<lambda:{cs.line}>",
                    class_name=node.fn.class_name, return_type="",
                    params=[], line=cs.line, body=body)
                lam = FunctionNode(
                    uid=f"{node.rel}:{cs.line}:<lambda>",
                    rel=node.rel, fn=lam_fn, tu=node.tu, is_callback=True)
                program.nodes.append(lam)
                _summarize(lam, program)
                node.summary.calls.append(CallSite(
                    callee=lam_fn.name, line=cs.line, kind="callback",
                    receiver=None, receiver_type=None, args=[],
                    arg_names=[], held=cs.held, resolved=lam))
                break  # one body span per arg slice


def _summarize(node: FunctionNode, program: "Program") -> None:
    env = _Env(node)
    s = node.summary
    held0: List[Tuple[str, int]] = []
    for req in node.fn.requires_lock:
        mutex = _normalize_mutex(
            [Token("id", req, node.fn.line)], env)
        held0.append((mutex, node.fn.line))
    if node.fn.body is not None:
        _walk_summarize(node.fn.body, held0, env, node, program)
    s.all_acquires = {a.mutex for a in s.acquires}
    for op in s.blocking:
        if s.may_block is None:
            s.may_block = op.what
    # Direct param facts.
    param_index = {p.name: k for k, p in enumerate(node.fn.params)
                   if p.name}
    for r in s.releases:
        if r.var in param_index:
            s.releases_params.add(param_index[r.var])
    for cs in s.calls:
        if cs.callee in _DEFER_FNS:
            for arg in cs.args:
                name = _core_arg_name(arg)
                if name in param_index:
                    p = node.fn.params[param_index[name]]
                    if any(h in p.type_text for h in _CALLBACK_TYPE_HINT):
                        s.registers_params.add(param_index[name])
    if not node.is_callback:
        _callback_nodes(node, program)


def _propagate(program: "Program") -> None:
    """Monotone fixed point for all_acquires / may_block /
    releases_params / registers_params across resolved edges."""
    for node in program.nodes:
        for cs in node.summary.calls:
            if cs.resolved is None:
                cs.resolved = program.resolve(cs)
    changed = True
    guard = 0
    while changed and guard < 1000:
        changed = False
        guard += 1
        for node in program.nodes:
            s = node.summary
            param_index = {p.name: k for k, p in enumerate(node.fn.params)
                          if p.name}
            for cs in s.calls:
                callee = cs.resolved
                if callee is None or callee is node:
                    continue
                t = callee.summary
                new = t.all_acquires - s.all_acquires
                if new:
                    s.all_acquires |= new
                    changed = True
                if s.may_block is None and t.may_block is not None:
                    s.may_block = (f"calls {callee.fn.name}() which may "
                                   f"block ({t.may_block})")
                    changed = True
                for k in sorted(t.releases_params):
                    if k < len(cs.arg_names) and \
                            cs.arg_names[k] in param_index:
                        p = param_index[cs.arg_names[k]]
                        if p not in s.releases_params:
                            s.releases_params.add(p)
                            changed = True
                for k in sorted(t.registers_params):
                    if k < len(cs.arg_names) and \
                            cs.arg_names[k] in param_index:
                        p = param_index[cs.arg_names[k]]
                        if p not in s.registers_params:
                            s.registers_params.add(p)
                            changed = True
