"""IPA-layer engine: whole-program loading, suppressions, caching.

Shares the token engine's Finding format, --json report shape, exit codes
(0 clean, 1 findings, 2 config error), `ll-analysis: allow(...)`
suppression syntax, allowlist format, and stale-allowlist hard errors.
The difference from the per-file layers: every path is loaded into one
Program (call graph + summaries) before any rule runs, so a finding in
file A can be caused by a summary computed from file B.

`--cache FILE` persists the full report keyed on a hash of every scanned
file's content plus the engine version, rule set, allowlist, and
frontend; a warm run with identical inputs replays the report without
rebuilding the call graph (the CI step caches this file keyed on the
source hash).
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine import (
    AnalysisError, AnalysisResult, Finding, _allowlist_match,
    _check_allowed, _iter_source_files, _load_allowlist,
    _parse_suppressions, check_stale_allowlist, repo_root,
)
from ..lexer import tokenize
from ..ast import clang_frontend
from ..ast import parser as internal_parser
from ..ast.engine import FRONTENDS, known_rule_names as _ast_known
from .callgraph import Program
from .rules import IPA_RULES, IPA_RULES_BY_NAME, IPARule

# Bump to invalidate --cache files when summaries or rules change shape.
ENGINE_VERSION = "ipa-1"


def known_rule_names() -> Set[str]:
    return _ast_known() | set(IPA_RULES_BY_NAME)


def _load_tu(fs_path: Path, rel: str, root: Path, frontend: str,
             warnings: List[str]):
    if frontend in ("clang", "auto"):
        ok, detail = clang_frontend.clang_available()
        if ok or frontend == "clang":
            return clang_frontend.load_tu(
                fs_path, rel, root, warn=warnings.append)
        if not warnings:
            warnings.append(
                f"clang frontend unavailable ({detail}); "
                "using internal frontend")
    return internal_parser.load_tu(fs_path, rel)


def _cache_key(files: Sequence[Tuple[str, bytes]], rules: Sequence[IPARule],
               allowlist: Optional[Path], frontend: str) -> str:
    h = hashlib.sha256()
    h.update(ENGINE_VERSION.encode())
    h.update(frontend.encode())
    h.update(",".join(r.name for r in rules).encode())
    if allowlist is not None and allowlist.is_file():
        h.update(allowlist.read_bytes())
    for rel, blob in sorted(files):
        h.update(rel.encode())
        h.update(hashlib.sha256(blob).digest())
    return h.hexdigest()


def _result_from_payload(payload: dict) -> AnalysisResult:
    findings = [Finding(**f) for f in payload.get("findings", [])]
    return AnalysisResult(
        findings, payload.get("suppressed", 0),
        payload.get("files_scanned", 0),
        dict(payload.get("suppressed_by_rule", {})),
        dict(payload.get("rule_elapsed_seconds", {})))


def analyze_paths_ipa(
    paths: Sequence[str],
    rules: Optional[Sequence[IPARule]] = None,
    root: Optional[Path] = None,
    allowlist: Optional[Path] = None,
    frontend: str = "auto",
    warnings: Optional[List[str]] = None,
    cache: Optional[Path] = None,
    stats: Optional[dict] = None,
) -> AnalysisResult:
    if frontend not in FRONTENDS:
        raise AnalysisError(f"unknown frontend '{frontend}' "
                            f"(expected one of {', '.join(FRONTENDS)})")
    root = (root or repo_root()).resolve()
    rules = list(rules) if rules is not None else list(IPA_RULES)
    entries = _load_allowlist(allowlist) if allowlist else []
    warnings = warnings if warnings is not None else []

    # Phase 1: discover and read every file (also feeds the cache key).
    file_list: List[Tuple[str, Path]] = []
    blobs: List[Tuple[str, bytes]] = []
    for arg in paths:
        p = Path(arg)
        if not p.exists():
            raise AnalysisError(f"no such path: {arg}")
        _check_allowed(root, p)
        for f in _iter_source_files(root, p):
            try:
                rel = f.resolve().relative_to(root).as_posix()
            except ValueError:
                rel = f.as_posix()
            file_list.append((rel, f))
            blobs.append((rel, f.read_bytes()))

    key = _cache_key(blobs, rules, allowlist, frontend)
    if cache is not None and cache.is_file():
        try:
            cached = json.loads(cache.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            cached = None
        if cached and cached.get("key") == key:
            warnings.append(
                f"cache hit ({cache}): replaying report for "
                f"{len(file_list)} file(s)")
            if stats is not None:
                stats.update(cached.get("stats", {}))
                stats["cache_hit"] = True
            return _result_from_payload(cached.get("payload", {}))

    # Phase 2: load every TU; collect suppressions and line tables.
    tus = []
    suppressions: Dict[str, Set[Tuple[int, str]]] = {}
    lines_of: Dict[str, List[str]] = {}
    for rel, f in file_list:
        text = f.read_text(encoding="utf-8", errors="replace")
        tokens, comments = tokenize(text)
        suppressions[rel] = _parse_suppressions(
            comments, tokens, rel, known_rule_names())
        lines_of[rel] = text.splitlines()
        tus.append(_load_tu(f, rel, root, frontend, warnings))

    # Phase 3: whole-program model.
    program = Program(tus)
    if stats is not None:
        stats["functions"] = len(program.nodes)
        stats["call_edges"] = sum(
            len(n.summary.calls) for n in program.nodes)
        stats["cache_hit"] = False

    # Phase 4: rules over the program; per-file suppression/allowlist.
    findings: List[Finding] = []
    used_entries: Set[int] = set()
    suppressed = 0
    suppressed_by_rule: Dict[str, int] = {}
    rule_elapsed: Dict[str, float] = {}
    for rule in rules:
        started = time.monotonic()
        hits = rule.check(program)
        rule_elapsed[rule.name] = (
            rule_elapsed.get(rule.name, 0.0)
            + (time.monotonic() - started))
        for rel, line, message in hits:
            if not rule.applies_to(rel):
                continue
            if (line, rule.name) in suppressions.get(rel, ()):
                suppressed += 1
                suppressed_by_rule[rule.name] = \
                    suppressed_by_rule.get(rule.name, 0) + 1
                continue
            lines = lines_of.get(rel, [])
            snippet = lines[line - 1].strip() if 0 < line <= len(lines) \
                else ""
            finding = Finding(rel, line, rule.name, message, snippet)
            k = _allowlist_match(finding, entries)
            if k is not None:
                used_entries.add(k)
                suppressed += 1
                suppressed_by_rule[rule.name] = \
                    suppressed_by_rule.get(rule.name, 0) + 1
            else:
                findings.append(finding)
    check_stale_allowlist(entries, used_entries, {r.name for r in rules},
                          file_list)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    result = AnalysisResult(findings, suppressed, len(file_list),
                            suppressed_by_rule, rule_elapsed)

    if cache is not None:
        try:
            cache.parent.mkdir(parents=True, exist_ok=True)
            cache.write_text(json.dumps({
                "key": key,
                "stats": dict(stats or {}),
                "payload": result.to_json(),
            }, indent=2) + "\n", encoding="utf-8")
        except OSError as e:
            warnings.append(f"cache write failed ({e})")
    return result


def main(argv: Sequence[str]) -> int:
    args = list(argv[1:])
    json_out: Optional[Path] = None
    rule_filter: Optional[List[IPARule]] = None
    allowlist: Optional[Path] = None
    frontend = "auto"
    budget_s: Optional[float] = None
    cache: Optional[Path] = None
    paths: List[str] = []
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--json":
            i += 1
            if i >= len(args):
                print("--json needs a file argument", file=sys.stderr)
                return 2
            json_out = Path(args[i])
        elif a == "--rules":
            i += 1
            if i >= len(args):
                print("--rules needs a comma-separated list",
                      file=sys.stderr)
                return 2
            names = [x.strip() for x in args[i].split(",") if x.strip()]
            unknown = [x for x in names if x not in IPA_RULES_BY_NAME]
            if unknown:
                print(f"unknown rule(s): {', '.join(unknown)}",
                      file=sys.stderr)
                return 2
            rule_filter = [IPA_RULES_BY_NAME[x] for x in names]
        elif a == "--frontend":
            i += 1
            if i >= len(args) or args[i] not in FRONTENDS:
                print(f"--frontend needs one of: {', '.join(FRONTENDS)}",
                      file=sys.stderr)
                return 2
            frontend = args[i]
        elif a == "--allowlist":
            i += 1
            if i >= len(args):
                print("--allowlist needs a file argument", file=sys.stderr)
                return 2
            allowlist = Path(args[i])
        elif a == "--cache":
            i += 1
            if i >= len(args):
                print("--cache needs a file argument", file=sys.stderr)
                return 2
            cache = Path(args[i])
        elif a == "--budget-seconds":
            i += 1
            try:
                budget_s = float(args[i])
            except (IndexError, ValueError):
                print("--budget-seconds needs a number", file=sys.stderr)
                return 2
        elif a == "--list-rules":
            for r in IPA_RULES:
                print(f"{r.name}: {r.doc}")
            return 0
        elif a in ("-h", "--help"):
            print(__doc__)
            print("usage: run_ipa_analysis.py [--json OUT] [--rules a,b] "
                  "[--frontend auto|internal|clang] [--allowlist FILE] "
                  "[--cache FILE] [--budget-seconds N] PATH...")
            return 0
        elif a.startswith("-"):
            print(f"unknown option: {a}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
        i += 1
    if not paths:
        print("usage: run_ipa_analysis.py [--json OUT] PATH...",
              file=sys.stderr)
        return 2
    if frontend == "clang":
        ok, detail = clang_frontend.clang_available()
        if not ok:
            print(f"SKIP: ipa-analysis clang frontend unavailable: "
                  f"{detail}", file=sys.stderr)
            print("SKIP: install libclang + python3-clang to run this "
                  "leg; the internal frontend still gates via "
                  "`--frontend internal`", file=sys.stderr)
            return 0
    started = time.monotonic()
    warnings: List[str] = []
    stats: dict = {}
    try:
        result = analyze_paths_ipa(
            paths, rules=rule_filter, allowlist=allowlist,
            frontend=frontend, warnings=warnings, cache=cache,
            stats=stats)
    except AnalysisError as e:
        print(f"analysis error: {e}", file=sys.stderr)
        return 2
    elapsed = time.monotonic() - started
    for w in warnings:
        print(f"warning: {w}", file=sys.stderr)
    for f in result.findings:
        print(f.render())
    if json_out is not None:
        payload = result.to_json()
        payload["layer"] = "ipa"
        payload["frontend"] = frontend
        payload["elapsed_seconds"] = round(elapsed, 3)
        payload["callgraph"] = {
            "functions": stats.get("functions", 0),
            "call_edges": stats.get("call_edges", 0),
            "cache_hit": stats.get("cache_hit", False),
        }
        json_out.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"ipa-analysis[{frontend}]: {len(result.findings)} finding(s), "
        f"{result.suppressed} suppressed, "
        f"{result.files_scanned} file(s) scanned in {elapsed:.1f}s "
        f"({stats.get('functions', 0)} functions, "
        f"{stats.get('call_edges', 0)} call edges"
        f"{', cached' if stats.get('cache_hit') else ''})",
        file=sys.stderr)
    if budget_s is not None and elapsed > budget_s:
        print(f"analysis error: wall-clock budget exceeded "
              f"({elapsed:.1f}s > {budget_s:.1f}s)", file=sys.stderr)
        return 2
    return 1 if result.findings else 0
