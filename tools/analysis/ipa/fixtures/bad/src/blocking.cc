// Fixture: blocking-under-lock must fire exactly three times — direct
// file I/O under a mutex, a callee that blocks while the caller holds a
// lock, and a condition-variable wait performed with a second (unrelated)
// mutex still held.
#include <cstdio>

#include "util/thread_annotations.h"

namespace fixture {

class TraceSink {
 public:
  void write_sample();
  void flush_all();
  void drain();

 private:
  void flush_buffers();
  util::Mutex sink_mu_;
  util::Mutex index_mu_;
  util::CondVar drained_cv_;
  std::FILE* out_ = nullptr;
  bool drained_ = false;
};

void TraceSink::write_sample() {
  util::MutexLock lock(sink_mu_);
  // 1: direct file I/O while sink_mu_ is held.
  std::fwrite(sample_, 1, sample_len_, out_);
}

void TraceSink::flush_buffers() { std::fflush(out_); }

void TraceSink::flush_all() {
  util::MutexLock lock(sink_mu_);
  // 2: flush_buffers() blocks (fflush) while sink_mu_ is held here.
  flush_buffers();
}

void TraceSink::drain() {
  util::MutexLock index(index_mu_);
  util::MutexLock lock(sink_mu_);
  // 3: the wait releases sink_mu_ only; index_mu_ stays held throughout.
  while (!drained_) drained_cv_.wait(lock);
}

}  // namespace fixture
