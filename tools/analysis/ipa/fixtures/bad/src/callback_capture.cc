// Fixture: callback-outlives-capture must fire exactly three times — a
// default &-capture escaping from a free function, a by-reference local
// in a direct schedule, and raw `this` escaping through a helper that
// registers its parameter into deferred execution (the interprocedural
// case the AST-layer deferred-raw-this rule cannot see).
#include <utility>

namespace fixture {

// 1: every local rides into the event queue by reference.
void arm_probe(Simulator& sim, int budget) {
  sim.schedule(7, [&] { consume(budget); });
}

class Pacer {
 public:
  void arm_burst();
  void arm_retx();

 private:
  void arm(util::Callback cb);
  Simulator& sim_;
  int queued_ = 0;
};

void Pacer::arm(util::Callback cb) { sim_.post(std::move(cb)); }

void Pacer::arm_burst() {
  int burst = 4;
  // 2: `burst` dies with this frame; the callback runs later.
  sim_.schedule(2, [&burst] { --burst; });
}

void Pacer::arm_retx() {
  // 3: raw `this` escapes through arm() onto the event queue.
  arm([this] { ++queued_; });
}

}  // namespace fixture
