// Fixture: lock-order-cycle must fire exactly twice — once for an AB-BA
// inversion across two functions, once for a non-recursive mutex
// re-acquired through a callee (self-deadlock).
#include "util/thread_annotations.h"

namespace fixture {

class Router {
 public:
  void to_a_then_b();
  void to_b_then_a();

 private:
  util::Mutex routes_mu_;
  util::Mutex stats_mu_;
  int routes_ = 0;
  int stats_ = 0;
};

void Router::to_a_then_b() {
  util::MutexLock routes(routes_mu_);
  util::MutexLock stats(stats_mu_);
  ++routes_;
  ++stats_;
}

// 1: the reversed nesting below closes the routes_mu_/stats_mu_ cycle.
void Router::to_b_then_a() {
  util::MutexLock stats(stats_mu_);
  util::MutexLock routes(routes_mu_);
  ++stats_;
  ++routes_;
}

class Ledger {
 public:
  void post_entry();

 private:
  void audit_locked();
  util::Mutex ledger_mu_;
  int entries_ = 0;
};

void Ledger::audit_locked() {
  util::MutexLock lock(ledger_mu_);
  ++entries_;
}

// 2: audit_locked() re-acquires ledger_mu_ while post_entry() holds it.
void Ledger::post_entry() {
  util::MutexLock lock(ledger_mu_);
  ++entries_;
  audit_locked();
}

}  // namespace fixture
