// Fixture: pool-use-after-release must fire exactly three times — once
// for a direct stale-handle use, once through a releasing helper (the
// interprocedural case), and once for a cancelled EventId. Lives under a
// src/ component because the rule is scoped to src/.
#include <utility>

namespace fixture {

class ConnTable {
 public:
  void direct_stale();
  void via_helper();

 private:
  void drop(Ref h);
  void touch(Ref h);
  util::ObjectPool<Conn> pool_;
};

void ConnTable::direct_stale() {
  Ref h = pool_.acquire();
  pool_.release(h);
  // 1: the slot behind `h` can be re-acquired before this runs.
  touch(h);
}

void ConnTable::drop(Ref h) { pool_.release(h); }

void ConnTable::via_helper() {
  Ref h = pool_.acquire();
  drop(h);
  // 2: drop() releases its parameter; the summary taints `h` here.
  touch(h);
}

class RetxTimer {
 public:
  void stale_event();

 private:
  void dispatch(EventId id);
  Simulator& sim_;
};

void RetxTimer::stale_event() {
  EventId id = sim_.schedule(3, 0);
  sim_.cancel(id);
  // 3: the cancelled id is re-dispatched without reassignment.
  dispatch(id);
}

}  // namespace fixture
