// Fixture: near-misses of every IPA rule; the analyzer must stay silent.
#include <cstdio>
#include <utility>

#include "util/thread_annotations.h"

namespace fixture {

class CleanTable {
 public:
  void recycle();
  void conditional_drop(bool stale);

 private:
  void touch2(Ref h);
  util::ObjectPool<Conn> pool_;
};

void CleanTable::recycle() {
  Ref h = pool_.acquire();
  pool_.release(h);
  h = pool_.acquire();  // reassignment heals the handle
  touch2(h);
}

void CleanTable::conditional_drop(bool stale) {
  Ref h = pool_.acquire();
  if (stale) {
    pool_.release(h);
    return;  // released only on the exiting path
  }
  touch2(h);
}

class CleanTimer {
 public:
  void rearm();

 private:
  void dispatch2(EventId id);
  Simulator& sim_;
  EventId pending2_ = 0;
};

void CleanTimer::rearm() {
  sim_.cancel(pending2_);
  pending2_ = sim_.schedule(5, 0);  // cancelled id immediately replaced
  dispatch2(pending2_);
}

class CleanRouter {
 public:
  void lookup();
  void insert();

 private:
  util::Mutex map_mu_;
  util::Mutex hot_mu_;
  int hits_ = 0;
};

// Both paths nest map_mu_ -> hot_mu_: one global order, no cycle.
void CleanRouter::lookup() {
  util::MutexLock map(map_mu_);
  util::MutexLock hot(hot_mu_);
  ++hits_;
}

void CleanRouter::insert() {
  util::MutexLock map(map_mu_);
  util::MutexLock hot(hot_mu_);
  ++hits_;
}

class CleanSink {
 public:
  void await_drain();
  void flush_outside();

 private:
  util::Mutex gate_mu_;
  util::CondVar gate_cv_;
  std::FILE* log_ = nullptr;
  bool open_ = false;
};

// Waiting on the single held lock is the designed cv pattern.
void CleanSink::await_drain() {
  util::MutexLock lock(gate_mu_);
  while (!open_) gate_cv_.wait(lock);
}

void CleanSink::flush_outside() {
  {
    util::MutexLock lock(gate_mu_);
    open_ = false;
  }
  std::fflush(log_);  // I/O after the lock scope closed
}

class CleanPacer {
 public:
  void arm_safe();
  void arm_helper_safe();

 private:
  void arm2(util::Callback cb);
  Simulator& sim_;
};

void CleanPacer::arm2(util::Callback cb) { sim_.post(std::move(cb)); }

// A live-token capture pins lifetime; both forms must stay silent.
void CleanPacer::arm_safe() {
  sim_.schedule(2, [token = alive_token()] { token.ping(); });
}

void CleanPacer::arm_helper_safe() {
  arm2([token = alive_token()] { token.ping(); });
}

}  // namespace fixture
