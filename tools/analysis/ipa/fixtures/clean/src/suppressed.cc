// Fixture: real findings silenced by inline suppressions with reasons —
// pins the per-rule suppression accounting (one blocking-under-lock, one
// pool-use-after-release).
#include <cstdio>

#include "util/thread_annotations.h"

namespace fixture {

class SuppressedMarks {
 public:
  void progress_mark();
  void teardown();

 private:
  void log_handle(Ref h);
  util::Mutex mark_mu_;
  util::ObjectPool<Conn> pool2_;
  std::FILE* out2_ = nullptr;
};

void SuppressedMarks::progress_mark() {
  util::MutexLock lock(mark_mu_);
  // ll-analysis: allow(blocking-under-lock) one-byte marks; a stalled reader is accepted by design here.
  std::fputc('.', out2_);
}

void SuppressedMarks::teardown() {
  Ref h = pool2_.acquire();
  pool2_.release(h);
  // ll-analysis: allow(pool-use-after-release) diagnostic dump of the just-released id; the pool is quiescent during teardown.
  log_handle(h);
}

}  // namespace fixture
