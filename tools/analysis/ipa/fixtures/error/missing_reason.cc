// Fixture: a suppression without a reason is a hard error (exit 2).
void f() {
  // ll-analysis: allow(pool-use-after-release)
  int x = 0;
  (void)x;
}
