// Regression fixture: the PR 1 deferred-callback use-after-free, in the
// interprocedural form the AST layer cannot see. The ACK machine routed
// its deferred emission through a helper; the raw `this` capture reached
// the simulator event queue one call away from the schedule() itself, so
// the per-function deferred-raw-this rule stayed silent while teardown
// during the emission window still left a dangling `this` on the queue.
// Expected: callback-outlives-capture fires once, at the arm site.
#include <utility>

namespace fixture {

class QuicAckMachine {
 public:
  void maybe_send_ack();

 private:
  void defer_emission(util::Callback cb);
  void emit_ack();
  Simulator& sim_;
};

void QuicAckMachine::defer_emission(util::Callback cb) {
  sim_.schedule(9, std::move(cb));
}

void QuicAckMachine::maybe_send_ack() {
  // BUG (as shipped): raw `this` rides through defer_emission() onto the
  // event queue; teardown during the window leaves it dangling.
  defer_emission([this] { emit_ack(); });
}

}  // namespace fixture
