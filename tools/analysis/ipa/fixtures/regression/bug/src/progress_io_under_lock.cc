// Regression fixture: the harness progress reporter wrote its tick marks
// while holding its mutex, so one stalled reader of the progress stream
// (a full stderr pipe) wedged every worker that ticked progress.
// Expected: blocking-under-lock fires twice (fputc, fflush).
#include <cstdio>

#include "util/thread_annotations.h"

namespace fixture {

class ProgressMarks {
 public:
  void mark();

 private:
  util::Mutex marks_mu_;
  std::FILE* marks_out_ = nullptr;
  int marks_ = 0;
};

void ProgressMarks::mark() {
  util::MutexLock lock(marks_mu_);
  ++marks_;
  // BUG (as shipped): blocking stream writes inside the critical section.
  std::fputc('.', marks_out_);
  std::fflush(marks_out_);
}

}  // namespace fixture
