// Regression fixture (fixed form): the PR 1 interprocedural deferred
// use-after-free, with the shipped fix — the callback pins lifetime with
// a live token instead of a raw `this`. Expected: silent.
#include <utility>

namespace fixture {

class QuicAckMachine {
 public:
  void maybe_send_ack();

 private:
  void defer_emission(util::Callback cb);
  void emit_ack();
  Simulator& sim_;
  LiveToken alive_;
};

void QuicAckMachine::defer_emission(util::Callback cb) {
  sim_.schedule(9, std::move(cb));
}

void QuicAckMachine::maybe_send_ack() {
  // FIX: the token keeps the machine alive (or drops the callback) for
  // as long as the registration can run.
  defer_emission([token = alive_.hold(), this] {
    if (token.expired()) return;
    emit_ack();
  });
}

}  // namespace fixture
