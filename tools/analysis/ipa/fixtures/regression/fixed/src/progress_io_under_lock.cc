// Regression fixture (fixed form): progress marks with the shipped fix —
// state is snapshotted under the lock, the blocking stream writes happen
// outside it. Expected: silent.
#include <cstdio>

#include "util/thread_annotations.h"

namespace fixture {

class ProgressMarks {
 public:
  void mark();

 private:
  util::Mutex marks_mu_;
  std::FILE* marks_out_ = nullptr;
  int marks_ = 0;
};

void ProgressMarks::mark() {
  std::FILE* out = nullptr;
  {
    util::MutexLock lock(marks_mu_);
    ++marks_;
    out = marks_out_;
  }
  if (out != nullptr) {
    std::fputc('.', out);
    std::fflush(out);
  }
}

}  // namespace fixture
