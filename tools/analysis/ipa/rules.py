"""Interprocedural rules over the whole-program call-graph model.

Each rule targets a bug class that only exists across call boundaries —
the classes the million-connection scale-out era makes likely:

  pool-use-after-release       an ObjectPool/BytesPool handle or EventId
                               used on a path after a release()/cancel()
                               reachable through calls: the ABA hazard the
                               PR 7 generation tags catch at runtime,
                               caught at analysis time.
  lock-order-cycle             a cycle in the global acquired-while-held
                               graph over util::Mutex — the deadlock
                               class clang -Wthread-safety cannot see.
  blocking-under-lock          cv waits, SweepRunner job submission, or
                               file I/O reachable while a mutex is held.
  callback-outlives-capture    interprocedural deferred-raw-this: a
                               capture escaping into a deferred-execution
                               registration through a callee, where the
                               registration outlives the captured frame
                               or object.

Rules emit (rel, line, message) triples; the IPA engine turns them into
the shared Finding format. Anything the model cannot resolve degrades to
silence — a partial call graph must never manufacture findings.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Tuple

from ..ast.astmodel import Block, Stmt
from ..ast.rules import (
    _DEFER_FNS, _SAFE_CAPTURE_HINT, _find_lambdas, _raw_this_captures,
    _split_args,
)
from .callgraph import (
    FunctionNode, Program, _Env, releases_in_stmt,
)

IPAFinding = Tuple[str, int, str]  # (rel, line, message)


class IPARule(NamedTuple):
    name: str
    applies_to: Callable[[str], bool]
    check: Callable[[Program], List[IPAFinding]]
    doc: str


def _src_only(rel: str) -> bool:
    return "src/" in rel


def _fmt_locks(locks) -> str:
    return ", ".join(f"'{m}'" for m in sorted(set(locks)))


# --- rule 1: pool-use-after-release ------------------------------------------


_EXIT_KINDS = ("return", "break", "continue", "goto")


def _stmt_exits(stmt: Stmt) -> bool:
    if stmt.kind in _EXIT_KINDS:
        return True
    return stmt.kind == "expr" and bool(stmt.head) and \
        stmt.head[0].kind == "id" and stmt.head[0].text == "throw"


def _uses_in_head(stmt: Stmt, var: str) -> bool:
    return any(t.kind == "id" and t.text == var for t in stmt.head)


def _uar_block(block: Block, taint: Dict[str, object], env: _Env,
               node: FunctionNode, program: Program,
               out: List[IPAFinding]) -> bool:
    """Walks one block; mutates `taint` (var -> ReleaseSite). Returns True
    when every path through the block exits the enclosing construct, so a
    release inside `if (...) { release; return; }` never taints the
    fall-through path."""
    for stmt in block.stmts:
        # Uses of already-released handles, before this statement's own
        # releases are recorded.
        for var in list(taint):
            if not stmt.head or not _uses_in_head(stmt, var):
                continue
            r = taint[var]
            if stmt.kind == "decl" and stmt.decl_name == var:
                del taint[var]  # redeclaration shadows the stale handle
                continue
            texts = [t.text for t in stmt.head]
            if len(texts) >= 2 and texts[0] == var and texts[1] == "=":
                del taint[var]  # reassignment heals the handle
                continue
            if "kInvalidEventId" in texts:
                continue  # validity check / sentinel reset idiom
            if "cancel" in texts:
                continue  # re-cancel of a stale id is a designed no-op
            noun = "event id" if r.kind == "cancel" else "pool handle"
            after = "cancel" if r.kind == "cancel" else "release"
            out.append((
                node.rel, stmt.line,
                f"{noun} '{var}' used after {after} (line {r.line}, "
                f"reachable through calls); the slot can be re-acquired "
                f"and its generation bumped (ABA) — reassign the handle "
                f"or reset it to the invalid sentinel first"))
            del taint[var]
        env.see_decl(stmt)
        if stmt.for_init is not None:
            env.see_decl(stmt.for_init)
        if stmt.head:
            for r in releases_in_stmt(stmt, env, program, node):
                taint[r.var] = r
        if stmt.kind == "if" and len(stmt.blocks) == 2:
            t1, t2 = dict(taint), dict(taint)
            x1 = _uar_block(stmt.blocks[0], t1, env, node, program, out)
            x2 = _uar_block(stmt.blocks[1], t2, env, node, program, out)
            if not x1:
                taint.update(t1)
            if not x2:
                taint.update(t2)
        else:
            for sub in stmt.blocks:
                tsub = dict(taint)
                exits = _uar_block(sub, tsub, env, node, program, out)
                if not exits:
                    taint.update(tsub)
        if _stmt_exits(stmt):
            return True
    return False


def _check_pool_uar(program: Program) -> List[IPAFinding]:
    out: List[IPAFinding] = []
    for node in program.nodes:
        if node.fn.body is None or node.is_callback:
            continue
        env = _Env(node)
        _uar_block(node.fn.body, {}, env, node, program, out)
    return out


# --- rule 2: lock-order-cycle ------------------------------------------------


def _lock_edges(program: Program):
    """(held, acquired) -> earliest (rel, line) evidence, from intra-
    function nesting and from calls made with locks held into callees'
    transitive acquire sets."""
    edges: Dict[Tuple[str, str], Tuple[str, int]] = {}

    def add(a: str, b: str, rel: str, line: int) -> None:
        key = (a, b)
        if key not in edges or (rel, line) < edges[key]:
            edges[key] = (rel, line)

    for node in program.nodes:
        s = node.summary
        for acq in s.acquires:
            for h in acq.held:
                add(h, acq.mutex, node.rel, acq.line)
        for cs in s.calls:
            if not cs.held or cs.kind == "callback" or cs.resolved is None:
                continue
            for m in sorted(cs.resolved.summary.all_acquires):
                for h in cs.held:
                    add(h, m, node.rel, cs.line)
    return edges


def _sccs(adj: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan strongly-connected components, iterative, deterministic."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    counter = [0]
    out: List[List[str]] = []

    for root in sorted(adj):
        if root in index:
            continue
        work = [(root, iter(sorted(adj.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, iter(sorted(adj.get(w, ())))))
                    advanced = True
                    break
                elif on_stack.get(w):
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                u = work[-1][0]
                low[u] = min(low[u], low[v])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == v:
                        break
                out.append(sorted(comp))
    return out


def _check_lock_order(program: Program) -> List[IPAFinding]:
    edges = _lock_edges(program)
    adj: Dict[str, List[str]] = {}
    for (a, b) in edges:
        adj.setdefault(a, []).append(b)
        adj.setdefault(b, [])
    out: List[IPAFinding] = []
    for comp in _sccs(adj):
        in_comp = set(comp)
        comp_edges = sorted(
            (a, b, edges[(a, b)]) for (a, b) in edges
            if a in in_comp and b in in_comp)
        cyclic = len(comp) > 1 or any(a == b for a, b, _ in comp_edges)
        if not cyclic or not comp_edges:
            continue
        ev = "; ".join(
            f"{a} -> {b} at {rel}:{line}"
            for a, b, (rel, line) in comp_edges[:4])
        rel0, line0 = comp_edges[0][2]
        if len(comp) == 1:
            msg = (f"mutex '{comp[0]}' acquired while already held "
                   f"({ev}); util::Mutex is non-recursive — this path "
                   "self-deadlocks")
        else:
            msg = (f"lock-order cycle over {_fmt_locks(comp)}: {ev}; two "
                   "threads interleaving these paths deadlock — pick one "
                   "global acquisition order (or order by address)")
        out.append((rel0, line0, msg))
    return out


# --- rule 3: blocking-under-lock ---------------------------------------------


def _check_blocking(program: Program) -> List[IPAFinding]:
    out: List[IPAFinding] = []
    for node in program.nodes:
        s = node.summary
        for op in s.blocking:
            if op.what == "CondVar::wait":
                other = [h for h in op.held if h != op.waited_mutex]
                if op.waited_mutex is None and len(op.held) <= 1:
                    continue  # waiting on the (single) held lock: designed
                if not other:
                    continue
                out.append((
                    node.rel, op.line,
                    f"condition-variable wait while also holding "
                    f"{_fmt_locks(other)}; the wait only releases its own "
                    "mutex, so every contender on the other lock stalls "
                    "for the full wait"))
                continue
            if op.held:
                out.append((
                    node.rel, op.line,
                    f"blocking operation '{op.what}' while holding "
                    f"{_fmt_locks(op.held)}; I/O and job submission under "
                    "a mutex stall every contender — move the blocking "
                    "work off the critical section"))
        # Lines already modeled as direct blocking ops (a cv.wait(lock)
        # carries its waited-mutex exemption there) must not re-report
        # through the resolved-call path.
        modeled = {op.line for op in s.blocking}
        for cs in s.calls:
            if not cs.held or cs.kind == "callback" or cs.resolved is None:
                continue
            if cs.line in modeled:
                continue
            reason = cs.resolved.summary.may_block
            if reason is None:
                continue
            out.append((
                node.rel, cs.line,
                f"call to '{cs.callee}()' may block ({reason}) while "
                f"holding {_fmt_locks(cs.held)} — hoist the blocking "
                "work out of the lock scope"))
    return out


# --- rule 4: callback-outlives-capture ---------------------------------------


def _capture_hazards(caps, in_method: bool, direct: bool):
    """Hazardous capture descriptions for a lambda escaping into deferred
    execution. For direct defer-fn calls the AST layer already owns the
    raw-this cases, so only explicit by-reference locals (and default
    &-capture in free functions) are reported; for indirect escapes every
    raw-this and by-ref form is in scope."""
    entries = _split_args(caps)
    for entry in entries:
        if any(_SAFE_CAPTURE_HINT.search(t.text) for t in entry
               if t.kind == "id"):
            return []
    hazards: List[str] = []
    if not direct:
        why = _raw_this_captures(caps, in_method)
        if why is not None:
            hazards.append(why)
    for entry in entries:
        texts = [t.text for t in entry]
        if texts == ["&"] and not in_method:
            hazards.append("default &-capture takes every local by "
                           "reference")
        elif len(texts) == 2 and texts[0] == "&" and \
                entry[1].kind == "id" and not texts[1].endswith("_"):
            hazards.append(f"captures local '{texts[1]}' by reference")
    return hazards


def _check_callback_capture(program: Program) -> List[IPAFinding]:
    out: List[IPAFinding] = []
    seen = set()
    for node in program.nodes:
        if node.is_callback:
            continue
        in_method = node.fn.class_name is not None
        for cs in node.summary.calls:
            if cs.kind == "callback":
                continue
            direct = cs.callee in _DEFER_FNS
            if direct:
                positions = list(range(len(cs.args)))
                where = f"deferred-execution call '{cs.callee}()'"
            else:
                callee = cs.resolved
                if callee is None or not callee.summary.registers_params:
                    continue
                positions = sorted(callee.summary.registers_params)
                where = (f"'{cs.callee}()' which registers its callback "
                         f"into deferred execution "
                         f"({callee.rel}:{callee.fn.line})")
            for k in positions:
                if k >= len(cs.args):
                    continue
                for _i, caps, _after in _find_lambdas(cs.args[k]):
                    for why in _capture_hazards(caps, in_method, direct):
                        key = (node.rel, cs.line, k, why)
                        if key in seen:
                            continue
                        seen.add(key)
                        out.append((
                            node.rel, cs.line,
                            f"lambda passed to {where} {why}; the "
                            "registration outlives the capturing frame "
                            "(PR 1 use-after-free class) — capture a "
                            "weak live-token or copy the value"))
    return out


# --- registry ----------------------------------------------------------------


IPA_RULES: Tuple[IPARule, ...] = (
    IPARule(
        "pool-use-after-release", _src_only, _check_pool_uar,
        "ObjectPool/BytesPool handle or EventId used on a path after a "
        "release()/cancel() reachable through calls (compile-time ABA)."),
    IPARule(
        "lock-order-cycle", _src_only, _check_lock_order,
        "Cycle (or recursive acquisition) in the global acquired-while-"
        "held graph over util::Mutex — the deadlock class "
        "-Wthread-safety cannot see."),
    IPARule(
        "blocking-under-lock", _src_only, _check_blocking,
        "Condition-variable waits, SweepRunner job submission, or file "
        "I/O reachable while a mutex is held."),
    IPARule(
        "callback-outlives-capture", _src_only, _check_callback_capture,
        "Interprocedural deferred-raw-this: a capture escaping into a "
        "deferred-execution registration that outlives the captured "
        "frame or object."),
)

IPA_RULES_BY_NAME = {r.name: r for r in IPA_RULES}
