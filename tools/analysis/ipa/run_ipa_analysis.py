#!/usr/bin/env python3
"""CLI for the interprocedural analyzer (tools/analysis/ipa).

Usage: run_ipa_analysis.py [--json OUT] [--rules a,b]
                           [--frontend auto|internal|clang]
                           [--allowlist FILE] [--cache FILE]
                           [--budget-seconds N] PATH...

Exit codes: 0 clean, 1 findings, 2 usage/config error. `--frontend
clang` without libclang prints a loud SKIP and exits 0 (mirrors
tools/run_clang_tidy.sh). See docs/static_analysis.md for the rule
catalog and suppression syntax.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from analysis.ipa import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv))
