"""C++ lexer for the longlook static analyzer.

Produces a token stream plus the comment list (for suppression parsing).
This is a *lexer*, not a parser: rules pattern-match token sequences with
brace/paren/angle tracking of their own. Handled here so no rule ever has
to worry about them again:

  * // and /* */ comments (returned separately, never as tokens);
  * string literals, char literals, raw strings R"delim(...)delim";
  * line splices (backslash-newline) inside any of the above;
  * preprocessor directives (skipped entirely, including continuations);
  * multi-char operators (::, ->, <<=, ...) as single tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

# Longest-match-first operator table.
_OPERATORS = [
    "<<=", ">>=", "...", "->*",
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", ".*",
]

_ID_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$"
)
_ID_CONT = _ID_START | frozenset("0123456789")


@dataclass
class Token:
    kind: str  # 'id' | 'num' | 'str' | 'chr' | 'op'
    text: str
    line: int


@dataclass
class Comment:
    line: int        # line the comment starts on
    text: str        # comment body without the // or /* */ markers
    trailing: bool   # True when code precedes the comment on its line


def tokenize(text: str) -> Tuple[List[Token], List[Comment]]:
    tokens: List[Token] = []
    comments: List[Comment] = []
    i = 0
    n = len(text)
    line = 1
    line_has_code = False

    def splice(j: int) -> int:
        """Skips backslash-newline splices; returns the new index."""
        nonlocal line
        while text.startswith("\\\n", j):
            line += 1
            j += 2
        return j

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            line_has_code = False
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("\\\n", i):
            line += 1
            i += 2
            continue
        # Comments.
        if text.startswith("//", i):
            start_line = line
            j = i + 2
            while j < n and text[j] != "\n":
                if text.startswith("\\\n", j):  # spliced // comment
                    line += 1
                    j += 2
                    continue
                j += 1
            comments.append(Comment(start_line, text[i + 2:j], line_has_code))
            i = j
            continue
        if text.startswith("/*", i):
            start_line = line
            j = i + 2
            while j < n and not text.startswith("*/", j):
                if text[j] == "\n":
                    line += 1
                j += 1
            comments.append(Comment(start_line, text[i + 2:j], line_has_code))
            i = j + 2 if j < n else n
            continue
        # Preprocessor directive: only if '#' is the first code on the line.
        if c == "#" and not line_has_code:
            j = i + 1
            while j < n and text[j] != "\n":
                if text.startswith("\\\n", j):
                    line += 1
                    j += 2
                    continue
                j += 1
            i = j
            continue
        # Raw string literal (optionally prefixed u8/u/U/L).
        if c in "Ru" or c == "L" or c == "U":
            m = _match_raw_string(text, i)
            if m is not None:
                body_end, newlines = m
                tokens.append(Token("str", text[i:body_end], line))
                line += newlines
                line_has_code = True
                i = body_end
                continue
        # Ordinary string / char literal (with prefixes).
        if c == '"' or c == "'" or (
            c in "uUL" and i + 1 < n and text[i + 1] in "\"'"
        ) or (text.startswith('u8', i) and i + 2 < n and text[i + 2] in "\"'"):
            start = i
            while i < n and text[i] not in "\"'":
                i += 1
            quote = text[i]
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    if text.startswith("\\\n", j):
                        line += 1
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                if text[j] == "\n":  # unterminated; be forgiving
                    break
                j += 1
            kind = "str" if quote == '"' else "chr"
            tokens.append(Token(kind, text[start:j], line))
            line_has_code = True
            i = j
            continue
        # Identifier / keyword.
        if c in _ID_START:
            j = i
            while j < n and text[j] in _ID_CONT:
                j = splice(j + 1)
            tokens.append(Token("id", text[i:j], line))
            line_has_code = True
            i = j
            continue
        # Number (incl. 1'000, 0x1F, 1.5e-3, suffixes).
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            while j < n and (
                text[j] in _ID_CONT or text[j] in ".'"
                or (text[j] in "+-" and j > i and text[j - 1] in "eEpP")
            ):
                j = splice(j + 1)
            tokens.append(Token("num", text[i:j], line))
            line_has_code = True
            i = j
            continue
        # Operators / punctuation.
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("op", op, line))
                line_has_code = True
                i += len(op)
                break
        else:
            tokens.append(Token("op", c, line))
            line_has_code = True
            i += 1
    return tokens, comments


def _match_raw_string(text: str, i: int):
    """Matches a raw string literal at i; returns (end_index, newline_count)
    or None."""
    j = i
    for prefix in ("u8R", "uR", "UR", "LR", "R"):
        if text.startswith(prefix, i):
            j = i + len(prefix)
            break
    else:
        return None
    if j >= len(text) or text[j] != '"':
        return None
    j += 1
    delim_end = j
    while delim_end < len(text) and text[delim_end] not in '(\\)" \t\n':
        delim_end += 1
    if delim_end >= len(text) or text[delim_end] != "(":
        return None
    closer = ")" + text[j:delim_end] + '"'
    end = text.find(closer, delim_end + 1)
    if end < 0:
        return None
    end += len(closer)
    return end, text.count("\n", i, end)
