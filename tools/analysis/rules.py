"""Rule implementations for the longlook token-aware analyzer.

Every rule consumes the token stream produced by lexer.tokenize() and
returns (line, message) findings. Path scoping mirrors the original lint:
substring fragments, so the self-test fixtures can opt into a scope by
embedding the fragment in their directory name (e.g. fixtures/bad/harness/).
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from .lexer import Token

# Paths whose files produce ordered, user-visible output (reports, traces,
# inferred state machines): unordered containers are banned outright there.
ORDER_SENSITIVE_PATHS = ("harness/", "net/trace", "stats/", "smi/")

# Layers that must emit through obs:: sinks instead of writing to stdio.
SINK_ENFORCED_PATHS = ("quic/", "tcp/", "cc/", "net/")

# Simulation layers that run purely on virtual time: any wall-clock read
# there is a determinism bug. obs (the profiler is the sanctioned reader),
# harness, and bench are exempt.
SIM_LAYER_PATHS = ("quic/", "tcp/", "cc/", "net/", "sim/")


class RuleFinding(NamedTuple):
    line: int
    message: str


class Rule(NamedTuple):
    name: str
    applies_to: Callable[[str], bool]
    check: Callable[[List[Token]], List[RuleFinding]]
    doc: str


def _everywhere(_rel: str) -> bool:
    return True


def _order_sensitive(rel: str) -> bool:
    return any(frag in rel for frag in ORDER_SENSITIVE_PATHS)


def _sink_enforced(rel: str) -> bool:
    return any(frag in rel for frag in SINK_ENFORCED_PATHS)


def _sim_layer(rel: str) -> bool:
    return any(frag in rel for frag in SIM_LAYER_PATHS)


# --- token-stream helpers ---------------------------------------------------

def _is(tok: Optional[Token], kind: str, text: Optional[str] = None) -> bool:
    return tok is not None and tok.kind == kind and (
        text is None or tok.text == text
    )


def _at(tokens: Sequence[Token], i: int) -> Optional[Token]:
    return tokens[i] if 0 <= i < len(tokens) else None


def _match_qualified(tokens: Sequence[Token], i: int):
    """Reads an optionally std::-qualified name at i.

    Returns (joined_text, next_index) or None. Only handles the two-level
    `std::X` / bare `X` shapes the rules need.
    """
    t = _at(tokens, i)
    if not _is(t, "id"):
        return None
    if t.text == "std" and _is(_at(tokens, i + 1), "op", "::") and _is(
        _at(tokens, i + 2), "id"
    ):
        return "std::" + tokens[i + 2].text, i + 3
    return t.text, i + 1


def _matching(tokens: Sequence[Token], i: int, open_t: str, close_t: str):
    """Given tokens[i] == open_t, returns the index of the matching close_t
    (or len(tokens) if unbalanced)."""
    depth = 0
    j = i
    while j < len(tokens):
        t = tokens[j]
        if t.kind == "op":
            if t.text == open_t:
                depth += 1
            elif t.text == close_t:
                depth -= 1
                if depth == 0:
                    return j
        j += 1
    return len(tokens)


def _statement_starts(tokens: Sequence[Token]) -> List[int]:
    """Indices where a statement/declaration may begin: file start and the
    token after each ';', '{', '}', or access-specifier ':'."""
    starts = [0]
    for i, t in enumerate(tokens[:-1]):
        if t.kind == "op" and t.text in (";", "{", "}"):
            starts.append(i + 1)
        elif (
            t.kind == "op" and t.text == ":" and i > 0
            and tokens[i - 1].kind == "id"
            and tokens[i - 1].text in ("public", "private", "protected")
        ):
            starts.append(i + 1)
    return starts


# --- legacy rule family: wall-clock ----------------------------------------

_WALL_CLOCK_IDS = frozenset({
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "localtime", "gmtime",
})


def _check_wall_clock(tokens: List[Token]) -> List[RuleFinding]:
    out = []
    msg = "wall-clock time source (virtual time comes from Simulator::now())"
    for i, t in enumerate(tokens):
        if t.kind != "id":
            continue
        if t.text in _WALL_CLOCK_IDS:
            out.append(RuleFinding(t.line, msg))
            continue
        if t.text == "time":
            prev2, prev1 = _at(tokens, i - 2), _at(tokens, i - 1)
            if _is(prev1, "op", "::") and _is(prev2, "id", "std"):
                # std::time — but not std::chrono::...::time_point etc.
                out.append(RuleFinding(t.line, msg))
                continue
            if _is(_at(tokens, i + 1), "op", "(") and (
                _is(_at(tokens, i + 2), "id", "NULL")
                or _is(_at(tokens, i + 2), "id", "nullptr")
                or _is(_at(tokens, i + 2), "num", "0")
            ) and _is(_at(tokens, i + 3), "op", ")"):
                if not _is(prev1, "op", ".") and not _is(prev1, "op", "->"):
                    out.append(RuleFinding(t.line, msg))
    return out


def _check_wall_clock_outside_obs(tokens: List[Token]) -> List[RuleFinding]:
    msg = ("wall-clock read in a simulation layer (profiling wall time "
           "belongs in obs::Profiler; obs/harness/bench are the only "
           "sanctioned readers)")
    return [RuleFinding(f.line, msg) for f in _check_wall_clock(tokens)]


# --- legacy rule family: raw-rand ------------------------------------------

def _check_raw_rand(tokens: List[Token]) -> List[RuleFinding]:
    out = []
    msg = "nondeterministic RNG (use util/Rng seeded from the scenario)"
    for i, t in enumerate(tokens):
        if t.kind != "id":
            continue
        prev = _at(tokens, i - 1)
        member = _is(prev, "op", ".") or _is(prev, "op", "->")
        if member:
            continue  # rng.random(...) etc. is someone's method, not libc
        if t.text == "drand48":
            out.append(RuleFinding(t.line, msg))
        elif t.text in ("srand", "rand") and _is(_at(tokens, i + 1), "op", "("):
            if t.text == "rand" and not _is(_at(tokens, i + 2), "op", ")"):
                continue  # rand(x) is not libc rand()
            out.append(RuleFinding(t.line, msg))
        elif t.text == "random" and _is(
            _at(tokens, i + 1), "op", "("
        ) and _is(_at(tokens, i + 2), "op", ")"):
            out.append(RuleFinding(t.line, msg))
        elif t.text in ("random_device", "default_random_engine") or \
                t.text.startswith("mt19937"):
            if _is(prev, "op", "::") and _is(_at(tokens, i - 2), "id", "std"):
                out.append(RuleFinding(t.line, msg))
    return out


# --- unordered containers ---------------------------------------------------

def _unordered_decls(tokens: Sequence[Token]) -> frozenset:
    """Names declared in this file as std::unordered_* containers."""
    names = set()
    i = 0
    while i < len(tokens) - 3:
        if (
            _is(tokens[i], "id", "std")
            and _is(tokens[i + 1], "op", "::")
            and _is(_at(tokens, i + 2), "id")
            and tokens[i + 2].text.startswith("unordered_")
            and _is(_at(tokens, i + 3), "op", "<")
        ):
            close = _close_angle(tokens, i + 3)
            nxt = _at(tokens, close + 1)
            if _is(nxt, "id"):
                names.add(nxt.text)
            i = close + 1
        else:
            i += 1
    return frozenset(names)


def _close_angle(tokens: Sequence[Token], i: int) -> int:
    """tokens[i] == '<'; returns index of the matching '>' (treating '>>' as
    two closes), or len(tokens)."""
    depth = 0
    j = i
    while j < len(tokens):
        t = tokens[j]
        if t.kind == "op":
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return j
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    return j
            elif t.text in (";", "{", "}"):
                return j  # never a template argument list
        j += 1
    return len(tokens)


def _range_for_loops(tokens: Sequence[Token]):
    """Yields (colon_index, close_paren_index, container_tokens, body_span)
    for each range-for. body_span is (start, end) token indices."""
    for i, t in enumerate(tokens):
        if not (_is(t, "id", "for") and _is(_at(tokens, i + 1), "op", "(")):
            continue
        close = _matching(tokens, i + 1, "(", ")")
        colon = None
        depth = 0
        for j in range(i + 1, close):
            tj = tokens[j]
            if tj.kind != "op":
                continue
            if tj.text in "([{":
                depth += 1
            elif tj.text in ")]}":
                depth -= 1
            elif tj.text == ";":
                break  # classic for
            elif tj.text == ":" and depth == 1 and colon is None:
                colon = j
        if colon is None:
            continue
        container = list(tokens[colon + 1:close])
        body_start = close + 1
        if _is(_at(tokens, body_start), "op", "{"):
            body_end = _matching(tokens, body_start, "{", "}")
        else:
            body_end = body_start
            while body_end < len(tokens) and not _is(
                tokens[body_end], "op", ";"
            ):
                body_end += 1
        yield colon, close, container, (body_start, body_end)


def _check_unordered_iteration(tokens: List[Token]) -> List[RuleFinding]:
    out = []
    decls = _unordered_decls(tokens)
    msg = "iterating an unordered container (order is implementation-defined)"
    for colon, _close, container, _body in _range_for_loops(tokens):
        hit = False
        for t in container:
            if t.kind == "id" and ("unordered" in t.text or t.text in decls):
                hit = True
                break
        if hit:
            out.append(RuleFinding(tokens[colon].line, msg))
    return out


def _check_unordered_in_report(tokens: List[Token]) -> List[RuleFinding]:
    out = []
    msg = "unordered container in an output-producing layer"
    for i, t in enumerate(tokens):
        if (
            t.kind == "id" and t.text.startswith("unordered_")
            and _is(_at(tokens, i - 1), "op", "::")
            and _is(_at(tokens, i - 2), "id", "std")
        ):
            out.append(RuleFinding(t.line, msg))
    return out


# --- pointer-keyed-map ------------------------------------------------------

def _check_pointer_keyed_map(tokens: List[Token]) -> List[RuleFinding]:
    out = []
    msg = (
        "pointer-keyed ordered container (iterates in allocation order, "
        "which differs run to run)"
    )
    for i, t in enumerate(tokens):
        if not (
            t.kind == "id"
            and t.text in ("map", "multimap", "set", "multiset")
            and _is(_at(tokens, i - 1), "op", "::")
            and _is(_at(tokens, i - 2), "id", "std")
            and _is(_at(tokens, i + 1), "op", "<")
        ):
            continue
        # First template argument: from i+2 to the ',' or '>' at depth 1.
        j = i + 2
        depth = 1
        last = None
        while j < len(tokens):
            tj = tokens[j]
            if tj.kind == "op":
                if tj.text == "<":
                    depth += 1
                elif tj.text == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif tj.text == ">>":
                    depth -= 2
                    if depth <= 0:
                        break
                elif tj.text == "," and depth == 1:
                    break
                elif tj.text in (";", "{", "}"):
                    break
            last = tj
            j += 1
        if last is not None and _is(last, "op", "*"):
            out.append(RuleFinding(t.line, msg))
    return out


# --- uninitialized-pod ------------------------------------------------------

_POD_SINGLE = frozenset({
    "bool", "char", "short", "int", "long", "float", "double",
    "Duration", "TimePoint", "PacketNumber", "EventId", "StreamId",
    "Port", "Address",
})
_POD_STD = frozenset({
    "size_t", "ptrdiff_t",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
})


def _match_pod_type(tokens: Sequence[Token], i: int):
    """Matches a POD type at i; returns next index or None."""
    t = _at(tokens, i)
    if not _is(t, "id"):
        return None
    if t.text == "unsigned":
        nxt = _at(tokens, i + 1)
        if _is(nxt, "id") and nxt.text in ("char", "short", "int", "long"):
            return i + 2
        return i + 1
    if t.text == "std" and _is(_at(tokens, i + 1), "op", "::"):
        nxt = _at(tokens, i + 2)
        if _is(nxt, "id") and nxt.text in _POD_STD:
            return i + 3
        return None
    if t.text in _POD_SINGLE:
        return i + 1
    return None


def _check_uninitialized_pod(tokens: List[Token]) -> List[RuleFinding]:
    out = []
    msg = "POD declaration without an initializer"
    # Paren depth per token, so parameter lists don't look like declarations.
    depth = 0
    depths = []
    for t in tokens:
        if t.kind == "op" and t.text == "(":
            depth += 1
        depths.append(depth)
        if t.kind == "op" and t.text == ")":
            depth = max(0, depth - 1)
    for start in _statement_starts(tokens):
        i = start
        if i >= len(tokens) or depths[i] > 0:
            continue
        if _is(_at(tokens, i), "id", "static"):
            i += 1
        if _is(_at(tokens, i), "id", "mutable"):
            i += 1
        after_type = _match_pod_type(tokens, i)
        if after_type is None:
            continue
        name = _at(tokens, after_type)
        if not _is(name, "id") or name.text in ("const", "operator"):
            continue
        j = after_type + 1
        if _is(_at(tokens, j), "op", "["):
            j = _matching(tokens, j, "[", "]") + 1
        if _is(_at(tokens, j), "op", ";"):
            out.append(RuleFinding(name.line, msg))
    return out


# --- direct-io --------------------------------------------------------------

_STDIO_FNS = frozenset({
    "printf", "fprintf", "fputs", "fputc", "puts", "fwrite",
})


def _check_direct_io(tokens: List[Token]) -> List[RuleFinding]:
    out = []
    msg = (
        "direct stdio in a sink-enforced layer "
        "(emit obs:: trace events / metrics instead)"
    )
    for i, t in enumerate(tokens):
        if t.kind != "id":
            continue
        prev = _at(tokens, i - 1)
        if _is(prev, "op", ".") or _is(prev, "op", "->"):
            continue
        if t.text in _STDIO_FNS and _is(_at(tokens, i + 1), "op", "("):
            out.append(RuleFinding(t.line, msg))
        elif t.text in ("cout", "cerr", "clog") and _is(
            prev, "op", "::"
        ) and _is(_at(tokens, i - 2), "id", "std"):
            out.append(RuleFinding(t.line, msg))
    return out


# --- narrowing-time-arith ---------------------------------------------------

_NARROW_INT = frozenset({
    "char", "short", "int",
    "int8_t", "int16_t", "int32_t",
    "uint8_t", "uint16_t", "uint32_t",
})
_UNSIGNED_INT = frozenset({
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "uintptr_t", "size_t",
})
_TIME_SUFFIXES = ("_us", "_ms", "_ns")
_PN_IDS = frozenset({
    "pn", "packet_number", "largest_acked", "largest_observed",
    "largest_received", "least_unacked", "next_packet_number",
})


def _parse_cast_type(tokens: Sequence[Token], i: int):
    """Parses a type name at i (inside static_cast<...> or a C cast).

    Returns (is_narrow, is_unsigned, next_index) or None for types the
    narrowing rule does not care about.
    """
    t = _at(tokens, i)
    if not _is(t, "id"):
        return None
    if _is(t, "id", "const"):
        return _parse_cast_type(tokens, i + 1)
    if t.text == "unsigned":
        j = i + 1
        nxt = _at(tokens, j)
        narrow = True
        if _is(nxt, "id") and nxt.text in ("char", "short", "int", "long"):
            narrow = nxt.text != "long"
            j += 1
            if _is(_at(tokens, j), "id", "long"):  # unsigned long long
                narrow = False
                j += 1
        return narrow, True, j
    if t.text == "signed":
        j = i + 1
        nxt = _at(tokens, j)
        if _is(nxt, "id") and nxt.text in ("char", "short", "int", "long"):
            return nxt.text != "long", False, j + 1
        return True, False, j
    if t.text == "std" and _is(_at(tokens, i + 1), "op", "::"):
        nxt = _at(tokens, i + 2)
        if not _is(nxt, "id"):
            return None
        name, j = nxt.text, i + 3
    else:
        name, j = t.text, i + 1
    if name in _NARROW_INT or name in _UNSIGNED_INT:
        return name in _NARROW_INT, name in _UNSIGNED_INT, j
    return None


def _taint(tokens: Sequence[Token]):
    """Returns (time_tainted, pn_tainted) for an expression token list."""
    time_t = False
    pn_t = False
    for k, t in enumerate(tokens):
        if t.kind != "id":
            continue
        if t.text.endswith(_TIME_SUFFIXES) or t.text == "time_since_epoch":
            time_t = True
        elif (
            t.text == "count" and k > 0 and tokens[k - 1].kind == "op"
            and tokens[k - 1].text in (".", "->")
            and k + 1 < len(tokens) and tokens[k + 1].kind == "op"
            and tokens[k + 1].text == "("
        ):
            time_t = True  # .count() — Duration/TimePoint accessor
        if t.text in _PN_IDS or t.text.endswith("_pn"):
            pn_t = True
    return time_t, pn_t


def _narrowing_message(narrow: bool, unsigned: bool, time_t: bool,
                       pn_t: bool) -> str:
    what = "time value" if time_t else "packet number"
    if narrow:
        return (
            f"truncating cast: {what} narrowed to a <=32-bit integer "
            "(compute in std::int64_t / PacketNumber width)"
        )
    return (
        f"signed/unsigned mix: {what} cast to an unsigned type "
        "(a negative duration becomes a huge positive value)"
    )


def _check_narrowing_time_arith(tokens: List[Token]) -> List[RuleFinding]:
    out = []
    n = len(tokens)
    for i, t in enumerate(tokens):
        # static_cast<T>(expr)
        if _is(t, "id", "static_cast") and _is(_at(tokens, i + 1), "op", "<"):
            parsed = _parse_cast_type(tokens, i + 2)
            if parsed is None:
                continue
            narrow, unsigned, after = parsed
            if not _is(_at(tokens, after), "op", ">") or not _is(
                _at(tokens, after + 1), "op", "("
            ):
                continue
            close = _matching(tokens, after + 1, "(", ")")
            time_t, pn_t = _taint(tokens[after + 2:close])
            if narrow and (time_t or pn_t):
                out.append(RuleFinding(
                    t.line, _narrowing_message(True, unsigned, time_t, pn_t)))
            elif unsigned and time_t:
                out.append(RuleFinding(
                    t.line, _narrowing_message(False, True, time_t, pn_t)))
            continue
        # C-style cast: (T)expr where expr is a primary expression. Only
        # fires when the '(' cannot be a call/declaration paren.
        if _is(t, "op", "(") :
            prev = _at(tokens, i - 1)
            if prev is not None and (
                (prev.kind == "id" and prev.text not in (
                    "return", "throw", "case", "co_return", "co_yield"))
                or prev.kind == "num"
                or (prev.kind == "op" and prev.text in (")", "]"))
            ):
                continue  # call or declarator paren, not a cast
            parsed = _parse_cast_type(tokens, i + 1)
            if parsed is None:
                continue
            narrow, unsigned, after = parsed
            if not _is(_at(tokens, after), "op", ")"):
                continue
            nxt = _at(tokens, after + 1)
            if nxt is None or not (nxt.kind in ("id", "num")
                                   or _is(nxt, "op", "(")):
                continue
            # Primary expression: id/number chains with member access,
            # calls, and one parenthesized group.
            j = after + 1
            expr = []
            depth = 0
            while j < n:
                tj = tokens[j]
                if tj.kind == "op":
                    if tj.text in ("(", "["):
                        depth += 1
                    elif tj.text in (")", "]"):
                        if depth == 0:
                            break
                        depth -= 1
                    elif depth == 0 and tj.text not in (".", "->", "::"):
                        break
                expr.append(tj)
                j += 1
            time_t, pn_t = _taint(expr)
            if narrow and (time_t or pn_t):
                out.append(RuleFinding(
                    t.line, _narrowing_message(True, unsigned, time_t, pn_t)))
            elif unsigned and time_t:
                out.append(RuleFinding(
                    t.line, _narrowing_message(False, True, time_t, pn_t)))
            continue
    # Narrow declarations initialized from tainted expressions:
    #   int rtt = smoothed_rtt_us; / const int x = d.count();
    for start in _statement_starts(tokens):
        i = start
        if _is(_at(tokens, i), "id", "const") or _is(
            _at(tokens, i), "id", "static"
        ):
            i += 1
        parsed = _parse_cast_type(tokens, i)
        if parsed is None:
            continue
        narrow, unsigned, after = parsed
        if not narrow:
            continue
        name = _at(tokens, after)
        if not _is(name, "id"):
            continue
        if not _is(_at(tokens, after + 1), "op", "="):
            continue
        j = after + 2
        expr = []
        depth = 0
        while j < n:
            tj = tokens[j]
            if tj.kind == "op":
                if tj.text in ("(", "[", "{"):
                    depth += 1
                elif tj.text in (")", "]", "}"):
                    depth -= 1
                elif tj.text == ";" and depth <= 0:
                    break
            expr.append(tj)
            j += 1
        time_t, pn_t = _taint(expr)
        if time_t or pn_t:
            out.append(RuleFinding(
                name.line,
                _narrowing_message(True, unsigned, time_t, pn_t)))
    # The cast and decl-init passes can both match one line (e.g.
    # `int x = static_cast<int>(rtt_us);`): report it once.
    return sorted(set(out))


# --- container-mutation-in-loop ---------------------------------------------

_MUTATORS = frozenset({
    "erase", "insert", "push_back", "emplace", "emplace_back",
    "push_front", "pop_back", "pop_front", "clear", "resize",
})


def _check_container_mutation(tokens: List[Token]) -> List[RuleFinding]:
    out = []
    for _colon, _close, container, (b0, b1) in _range_for_loops(tokens):
        # Normalize the container expression; skip call results (no stable
        # object to compare against).
        sig = [t.text for t in container]
        if "(" in sig:
            continue
        if not sig:
            continue
        m = len(sig)
        j = b0
        while j + m + 1 < b1:
            prev = _at(tokens, j - 1)
            if _is(prev, "op", ".") or _is(prev, "op", "->") or _is(
                prev, "op", "::"
            ):
                j += 1
                continue  # other.events.push_back: a different object
            window = [tokens[j + k].text for k in range(m)]
            if window == sig:
                dot = _at(tokens, j + m)
                mem = _at(tokens, j + m + 1)
                if (
                    _is(dot, "op", ".") or _is(dot, "op", "->")
                ) and _is(mem, "id") and mem.text in _MUTATORS and _is(
                    _at(tokens, j + m + 2), "op", "("
                ):
                    out.append(RuleFinding(
                        mem.line,
                        f"'{''.join(sig)}.{mem.text}()' mutates the "
                        "container being range-for iterated "
                        "(iterator invalidation)"))
                    j += m + 2
                    continue
            j += 1
    return out


# --- missing-lock-annotation ------------------------------------------------

_MUTEX_TYPES = (
    ("std", "::", "mutex"),
    ("std", "::", "recursive_mutex"),
    ("std", "::", "shared_mutex"),
    ("std", "::", "timed_mutex"),
    ("util", "::", "Mutex"),
    ("Mutex",),
)
_FIELD_EXEMPT_IDS = frozenset({
    "static", "constexpr", "using", "typedef", "friend", "enum", "class",
    "struct", "union", "atomic", "condition_variable", "CondVar",
    "operator",  # `T& operator=(...) = delete;` is not a field
    "LL_GUARDED_BY", "LL_PT_GUARDED_BY",
})


def _is_mutex_statement(stmt: Sequence[Token]) -> bool:
    texts = [t.text for t in stmt if t.kind in ("id", "op")]
    while texts and texts[0] == "mutable":
        texts.pop(0)
    for pattern in _MUTEX_TYPES:
        if tuple(texts[:len(pattern)]) == pattern:
            # Followed by the member name and nothing structural.
            rest = texts[len(pattern):]
            if len(rest) >= 1 and rest[0] not in ("<", "("):
                return True
    return False


def _class_bodies(tokens: Sequence[Token]):
    """Yields (class_name, body_start, body_end) for class/struct
    definitions (any nesting)."""
    for i, t in enumerate(tokens):
        if not (_is(t, "id", "class") or _is(t, "id", "struct")):
            continue
        prev = _at(tokens, i - 1)
        if _is(prev, "id", "enum") or _is(prev, "op", "<"):
            continue  # enum class / template parameter
        # Find the '{' or ';' that ends the head; skip base-clause parens.
        j = i + 1
        name = None
        while j < len(tokens):
            tj = tokens[j]
            if _is(tj, "id") and name is None and tj.text not in (
                "final", "alignas"
            ):
                name = tj.text
            if tj.kind == "op":
                if tj.text == ";":
                    j = None
                    break
                if tj.text == "{":
                    break
                if tj.text == "(":
                    j = _matching(tokens, j, "(", ")")
            j += 1
        if j is None or j >= len(tokens):
            continue
        body_end = _matching(tokens, j, "{", "}")
        yield name or "<anon>", j + 1, body_end


def _member_statements(tokens: Sequence[Token], start: int, end: int):
    """Yields member statements at class-body depth 0 as token lists.
    Nested braces (method bodies, nested classes, initializers) collapse to
    a single '{}' marker."""
    stmt: List[Token] = []
    i = start
    while i < end:
        t = tokens[i]
        if t.kind == "op" and t.text == "{":
            close = _matching(tokens, i, "{", "}")
            stmt.append(Token("op", "{}", t.line))
            i = close + 1
            # A '}' that closes a method body ends the statement too.
            if _is(_at(tokens, i), "op", ";"):
                i += 1
            stmt = []
            continue
        if t.kind == "op" and t.text == ";":
            if stmt:
                yield stmt
            stmt = []
            i += 1
            continue
        if (
            t.kind == "op" and t.text == ":" and stmt
            and stmt[-1].kind == "id"
            and stmt[-1].text in ("public", "private", "protected")
        ):
            stmt = []
            i += 1
            continue
        stmt.append(t)
        i += 1
    if stmt:
        yield stmt


def _check_missing_lock_annotation(tokens: List[Token]) -> List[RuleFinding]:
    out = []
    for cls, b0, b1 in _class_bodies(tokens):
        members = list(_member_statements(tokens, b0, b1))
        mutex_names = []
        for stmt in members:
            if _is_mutex_statement(stmt):
                ids = [t.text for t in stmt if t.kind == "id"]
                if ids:
                    mutex_names.append(ids[-1])
        if not mutex_names:
            continue
        for stmt in members:
            if _is_mutex_statement(stmt):
                continue
            texts = [t.text for t in stmt]
            if any(x in _FIELD_EXEMPT_IDS for x in texts):
                continue
            if texts and texts[0] == "const":
                continue  # immutable after construction: no lock needed
            # A field has no top-level parens (calls/methods) outside
            # template args and no '{}' body marker before any '='.
            if _looks_like_method_or_alias(stmt):
                continue
            name = _field_name(stmt)
            if name is None:
                continue
            out.append(RuleFinding(
                stmt[0].line,
                f"field '{name}' of class '{cls}' shares the class with "
                f"mutex '{mutex_names[0]}' but carries no LL_GUARDED_BY / "
                "LL_PT_GUARDED_BY annotation (atomic, const, or annotate)"))
    return out


def _looks_like_method_or_alias(stmt: Sequence[Token]) -> bool:
    angle = 0
    for t in stmt:
        if t.kind != "op":
            continue
        if t.text == "<":
            angle += 1
        elif t.text == ">":
            angle = max(0, angle - 1)
        elif t.text == ">>":
            angle = max(0, angle - 2)
        elif t.text == "(" and angle == 0:
            return True
        elif t.text == "{}" and angle == 0:
            return True
        elif t.text == "=" and angle == 0:
            return False  # default member initializer: field
    return False


def _field_name(stmt: Sequence[Token]) -> Optional[str]:
    """Last identifier before '=', '[' or end of statement."""
    name = None
    angle = 0
    for t in stmt:
        if t.kind == "op":
            if t.text == "<":
                angle += 1
            elif t.text == ">":
                angle = max(0, angle - 1)
            elif t.text == ">>":
                angle = max(0, angle - 2)
            elif angle == 0 and t.text in ("=", "["):
                break
        elif t.kind == "id" and angle == 0:
            name = t.text
    return name


# --- registry ---------------------------------------------------------------

LEGACY_RULES = [
    Rule("wall-clock", _everywhere, _check_wall_clock,
         "Any real-time source; virtual time comes from Simulator::now()."),
    Rule("raw-rand", _everywhere, _check_raw_rand,
         "rand()/std::mt19937/std::random_device; use util/Rng."),
    Rule("unordered-iteration", _everywhere, _check_unordered_iteration,
         "Range-for over a std::unordered_* container."),
    Rule("unordered-in-report", _order_sensitive, _check_unordered_in_report,
         "std::unordered_* anywhere in an output-producing layer."),
    Rule("pointer-keyed-map", _everywhere, _check_pointer_keyed_map,
         "std::map/set keyed by a raw pointer iterates in allocation order."),
    Rule("uninitialized-pod", _everywhere, _check_uninitialized_pod,
         "POD member/variable declaration without an initializer."),
    Rule("direct-io", _sink_enforced, _check_direct_io,
         "printf/std::cout in transport/link layers; use obs:: sinks."),
]

NEW_RULES = [
    Rule("narrowing-time-arith", _everywhere, _check_narrowing_time_arith,
         "Truncating or sign-mixing casts on *_us/*_ms/.count()/packet-"
         "number expressions."),
    Rule("container-mutation-in-loop", _everywhere,
         _check_container_mutation,
         "erase/insert/push_back on the container being range-for iterated."),
    Rule("missing-lock-annotation", _everywhere,
         _check_missing_lock_annotation,
         "Class has a mutex member but fields without LL_GUARDED_BY."),
    Rule("wall-clock-outside-obs", _sim_layer, _check_wall_clock_outside_obs,
         "steady_clock/system_clock read inside src/{quic,tcp,cc,net,sim}; "
         "obs/harness/bench are exempt."),
]

ALL_RULES = LEGACY_RULES + NEW_RULES
RULES_BY_NAME: Dict[str, Rule] = {r.name: r for r in ALL_RULES}
