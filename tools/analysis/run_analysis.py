#!/usr/bin/env python3
"""CLI entry point for the longlook analyzer.

    tools/analysis/run_analysis.py [--json OUT] [--rules a,b]
                                   [--legacy-only] [--allowlist FILE] PATH...

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/configuration error.
"""

import sys
from pathlib import Path

# Drop the script's own directory from sys.path: tools/analysis/ast/ would
# otherwise shadow the stdlib `ast` module for everything the interpreter
# imports. The package is reached via tools/ instead.
_here = str(Path(__file__).resolve().parent)
sys.path[:] = [p for p in sys.path if p not in ("", _here)]
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from analysis import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv))
