#!/usr/bin/env python3
"""CLI entry point for the longlook analyzer.

    tools/analysis/run_analysis.py [--json OUT] [--rules a,b]
                                   [--legacy-only] [--allowlist FILE] PATH...

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/configuration error.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from analysis import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv))
