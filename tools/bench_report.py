#!/usr/bin/env python3
"""bench_report — aggregate, diff, and gate BENCH_<name>.json results.

Every bench emits a versioned result file via `--json-out` / `LL_BENCH_JSON`
(see bench/bench_common.h). Each file has two parts:

  deterministic   per-cell metrics and integer-scaled summary statistics;
                  byte-identical for a given build at any LL_JOBS
  profile         wall time, throughput rates, profiler aggregate;
                  machine- and load-dependent

Subcommands:

  summary <dir>                     render a table over a directory of results
  det <file>                        print the canonical deterministic section
                                    (for byte-exact comparison via cmp)
  diff <dirA> <dirB> [--threshold]  deterministic exact, profile by threshold
  check <dir> --baselines <dir>     CI gate: deterministic sections must match
                                    the committed baselines exactly; profile is
                                    threshold-only and off by default
  perf-floor <dir> --floors <json>  CI gate: profile-section work counters
                                    (events dispatched, timer ops) must match
                                    committed values exactly and allocation
                                    counters must stay under their ceilings;
                                    events/sec is informational only
  hist <path...> [--key] [--markdown]
                                    render metric distributions: the per-cell
                                    `metrics` histograms inside BENCH_*.json
                                    and `run:hist` records from trace *.jsonl
                                    artifacts, with an ASCII density strip per
                                    histogram (--markdown for EXPERIMENTS.md)

Exit codes: 0 ok, 1 mismatch/regression, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

RESULT_VERSION = 1


def load_result(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    v = data.get("v")
    if v != RESULT_VERSION:
        raise ValueError(f"{path}: unsupported result version {v!r} "
                         f"(expected {RESULT_VERSION})")
    for key in ("name", "rounds", "deterministic", "profile"):
        if key not in data:
            raise ValueError(f"{path}: missing top-level key '{key}'")
    return data


def result_files(directory: str) -> List[str]:
    if not os.path.isdir(directory):
        raise ValueError(f"not a directory: {directory}")
    names = sorted(n for n in os.listdir(directory)
                   if n.startswith("BENCH_") and n.endswith(".json"))
    return [os.path.join(directory, n) for n in names]


def canonical_det(data: dict) -> str:
    """Canonical serialization of the deterministic section.

    Key-sorted, fixed separators: equal sections always produce equal bytes,
    so `cmp` on two `det` outputs is the LL_JOBS-independence check.
    """
    return json.dumps(data["deterministic"], sort_keys=True,
                      separators=(",", ":")) + "\n"


def profile_rates(data: dict) -> Dict[str, float]:
    prof = data.get("profile") or {}
    out = {}
    for key in ("wall_ns", "events_per_sec", "packets_per_sec",
                "bytes_per_sec"):
        v = prof.get(key)
        if isinstance(v, (int, float)):
            out[key] = float(v)
    return out


# ----------------------------------------------------------------- summary


def cmd_summary(args: argparse.Namespace) -> int:
    try:
        files = result_files(args.dir)
    except ValueError as e:
        print(f"bench_report summary: {e}", file=sys.stderr)
        return 2
    if not files:
        print(f"bench_report summary: no BENCH_*.json in {args.dir}",
              file=sys.stderr)
        return 2
    rows: List[Tuple[str, ...]] = []
    for path in files:
        try:
            data = load_result(path)
        except (ValueError, OSError, json.JSONDecodeError) as e:
            print(f"bench_report summary: {e}", file=sys.stderr)
            return 2
        sections = data["deterministic"].get("sections", [])
        cells = sum(len(s.get("cells", [])) for s in sections)
        rates = profile_rates(data)
        counters = profile_counters(data)
        rows.append((
            data["name"],
            str(data["rounds"]),
            str(cells),
            f"{rates.get('wall_ns', 0) / 1e9:.2f}",
            f"{rates.get('events_per_sec', 0) / 1e6:.2f}",
            f"{rates.get('packets_per_sec', 0) / 1e3:.1f}",
            str(counters.get("ts_samples", 0)),
            str(counters.get("flight_dumps", 0)),
        ))
    headers = ("bench", "rounds", "cells", "wall_s", "Mev/s", "kpkt/s",
               "ts_samples", "flt_dumps")
    widths = [max(len(h), *(len(r[i]) for r in rows))
              for i, h in enumerate(headers)]
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
    return 0


# --------------------------------------------------------------------- det


def cmd_det(args: argparse.Namespace) -> int:
    try:
        data = load_result(args.file)
    except (ValueError, OSError, json.JSONDecodeError) as e:
        print(f"bench_report det: {e}", file=sys.stderr)
        return 2
    sys.stdout.write(canonical_det(data))
    return 0


# ---------------------------------------------------------- diff and check


def compare_pair(name: str, a: dict, b: dict, threshold_pct: float,
                 check_profile: bool) -> List[str]:
    """Return human-readable problems between result a (reference) and b."""
    problems: List[str] = []
    det_a, det_b = canonical_det(a), canonical_det(b)
    if det_a != det_b:
        sec_a = {s.get("title"): s for s in
                 a["deterministic"].get("sections", [])}
        sec_b = {s.get("title"): s for s in
                 b["deterministic"].get("sections", [])}
        for title in sorted(set(sec_a) | set(sec_b), key=str):
            if title not in sec_b:
                problems.append(f"{name}: section missing: {title!r}")
            elif title not in sec_a:
                problems.append(f"{name}: unexpected section: {title!r}")
            elif json.dumps(sec_a[title], sort_keys=True) != \
                    json.dumps(sec_b[title], sort_keys=True):
                problems.append(f"{name}: deterministic section differs: "
                                f"{title!r}")
        if not problems:
            problems.append(f"{name}: deterministic sections differ")
    if check_profile:
        ra, rb = profile_rates(a), profile_rates(b)
        for key in sorted(set(ra) & set(rb)):
            if ra[key] <= 0:
                continue
            # wall_ns regresses upward; the *_per_sec rates regress downward.
            if key == "wall_ns":
                delta_pct = (rb[key] / ra[key] - 1.0) * 100.0
            else:
                delta_pct = (1.0 - rb[key] / ra[key]) * 100.0
            if delta_pct > threshold_pct:
                problems.append(
                    f"{name}: profile regression in {key}: "
                    f"{ra[key]:.3g} -> {rb[key]:.3g} "
                    f"({delta_pct:+.1f}% worse, threshold "
                    f"{threshold_pct:g}%)")
    return problems


def diff_dirs(dir_a: str, dir_b: str, threshold_pct: float,
              check_profile: bool, require_all: bool,
              label_a: str, label_b: str) -> int:
    try:
        files_a = result_files(dir_a)
        files_b = result_files(dir_b)
    except ValueError as e:
        print(f"bench_report: {e}", file=sys.stderr)
        return 2
    by_name_a = {os.path.basename(p): p for p in files_a}
    by_name_b = {os.path.basename(p): p for p in files_b}
    problems: List[str] = []
    for name in sorted(set(by_name_a) - set(by_name_b)):
        problems.append(f"{name}: present in {label_a}, missing in {label_b}")
    if require_all:
        for name in sorted(set(by_name_b) - set(by_name_a)):
            problems.append(f"{name}: present in {label_b} but has no "
                            f"committed baseline in {label_a}")
    common = sorted(set(by_name_a) & set(by_name_b))
    compared = 0
    for name in common:
        try:
            a = load_result(by_name_a[name])
            b = load_result(by_name_b[name])
        except (ValueError, OSError, json.JSONDecodeError) as e:
            problems.append(str(e))
            continue
        problems.extend(
            compare_pair(name, a, b, threshold_pct, check_profile))
        compared += 1
    for p in problems:
        print(p)
    if problems:
        print(f"bench_report: {len(problems)} problem(s) across "
              f"{compared} compared result(s)")
        return 1
    print(f"bench_report: {compared} result(s) match ({label_a} vs {label_b})")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    return diff_dirs(args.a, args.b, args.threshold,
                     check_profile=True, require_all=False,
                     label_a=args.a, label_b=args.b)


def cmd_check(args: argparse.Namespace) -> int:
    return diff_dirs(args.baselines, args.dir, args.profile_threshold,
                     check_profile=args.profile_threshold > 0,
                     require_all=False,
                     label_a="baselines", label_b=args.dir)


# -------------------------------------------------------------- perf-floor


def profile_counters(data: dict) -> Dict[str, int]:
    """The profiler's aggregated counters (profile.agg.counters)."""
    agg = (data.get("profile") or {}).get("agg") or {}
    counters = agg.get("counters") or {}
    return {k: v for k, v in counters.items() if isinstance(v, int)}


def check_floor_entry(name: str, data: dict, floor: dict) -> List[str]:
    """Gate one result against its floor spec. Returns hard failures.

    Floor spec keys:
      rounds             guard: the result must have been produced at this
                         LL_BENCH_ROUNDS (counters scale with rounds)
      exact              counter -> value; must match exactly. These are
                         virtual-time work counts (events dispatched, timer
                         ops) — any drift is a behaviour change, not noise.
      max                counter -> ceiling; must not exceed. Allocation
                         telemetry: a rising pool high-water mark or
                         oversized-callback count is an allocation
                         regression even when wall time looks fine.
      min_events_per_sec informational only: prints a warning on a slow
                         run but never fails (machine/load dependent).
    """
    problems: List[str] = []
    rounds = floor.get("rounds")
    if rounds is not None and data.get("rounds") != rounds:
        problems.append(
            f"{name}: produced at rounds={data.get('rounds')}, floors "
            f"calibrated for rounds={rounds} (set LL_BENCH_ROUNDS={rounds})")
        return problems
    counters = profile_counters(data)
    # The profiler elides zero-valued counters from the JSON, so a missing
    # counter reads as 0 (e.g. sim_callback_heap when every callback fits
    # the inline storage).
    for key, want in sorted((floor.get("exact") or {}).items()):
        got = counters.get(key, 0)
        if got != want:
            problems.append(
                f"{name}: counter {key} = {got} (expected exactly {want})")
    for key, ceiling in sorted((floor.get("max") or {}).items()):
        got = counters.get(key, 0)
        if got > ceiling:
            problems.append(
                f"{name}: counter {key} = {got} exceeds ceiling {ceiling}")
    floor_rate = floor.get("min_events_per_sec")
    if floor_rate is not None:
        rate = (data.get("profile") or {}).get("events_per_sec")
        if isinstance(rate, (int, float)) and rate < floor_rate:
            print(f"{name}: WARN events_per_sec {rate:.0f} below "
                  f"informational floor {floor_rate} (not gated)")
    return problems


def cmd_perf_floor(args: argparse.Namespace) -> int:
    try:
        with open(args.floors, "r", encoding="utf-8") as f:
            floors = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_report perf-floor: {e}", file=sys.stderr)
        return 2
    benches = floors.get("benches")
    if not isinstance(benches, dict) or not benches:
        print(f"bench_report perf-floor: {args.floors} has no 'benches'",
              file=sys.stderr)
        return 2
    problems: List[str] = []
    checked = 0
    for bench, floor in sorted(benches.items()):
        path = os.path.join(args.dir, f"BENCH_{bench}.json")
        if not os.path.isfile(path):
            problems.append(f"BENCH_{bench}.json: missing from {args.dir}")
            continue
        try:
            data = load_result(path)
        except (ValueError, OSError, json.JSONDecodeError) as e:
            problems.append(str(e))
            continue
        problems.extend(check_floor_entry(f"BENCH_{bench}.json", data, floor))
        checked += 1
    for p in problems:
        print(p)
    if problems:
        print(f"bench_report perf-floor: {len(problems)} problem(s) across "
              f"{checked} checked result(s)")
        return 1
    print(f"bench_report perf-floor: {checked} result(s) meet "
          f"{args.floors}")
    return 0


# -------------------------------------------------------------------- hist

# Mirrors obs::Histogram's log-linear bucketing (src/obs/histogram.h):
# exact unit buckets below 32, then 16 linear sub-buckets per power of two.
_EXACT_LIMIT = 32
_SUB_BUCKETS = 16

_BAR_LEVELS = " .:-=+*#"


def bucket_lower_bound(index: int) -> int:
    if index < 0:
        return 0
    if index < _EXACT_LIMIT:
        return index
    oct_, sub = divmod(index - _EXACT_LIMIT, _SUB_BUCKETS)
    return (_SUB_BUCKETS + sub) << (oct_ + 1)


def _is_hist_dict(obj) -> bool:
    if not isinstance(obj, dict) or not isinstance(obj.get("count"), int):
        return False
    if obj["count"] == 0:
        return True
    return all(isinstance(obj.get(k), int)
               for k in ("sum", "min", "max", "p50", "p90", "p99"))


def _hist_buckets(obj) -> List[Tuple[int, int]]:
    """[(index, count)] from either a list (bench JSON) or the string
    encoding used by run:hist trace records."""
    raw = obj.get("buckets", [])
    if isinstance(raw, str):
        raw = json.loads(raw)
    out = []
    for pair in raw:
        if isinstance(pair, list) and len(pair) == 2 and \
                all(isinstance(x, int) for x in pair):
            out.append((pair[0], pair[1]))
    return out


def _cell_label(cell: dict) -> str:
    parts = [str(cell[k]) for k in ("row", "col") if k in cell]
    return "x".join(parts)


def collect_hists(paths: List[str]) -> List[Tuple[str, dict]]:
    """(label, histogram-dict) pairs from BENCH_*.json results (the
    per-cell `metrics` histograms) and trace *.jsonl artifacts (`run:hist`
    records), in input order."""
    files: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            files.extend(result_files(p))
            files.extend(sorted(
                os.path.join(p, n) for n in os.listdir(p)
                if n.endswith(".jsonl")))
        else:
            files.append(p)
    entries: List[Tuple[str, dict]] = []
    for path in files:
        base = os.path.basename(path)
        if base.endswith(".jsonl"):
            with open(path, "r", encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        obj = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(obj, dict) and obj.get("ev") == "run:hist":
                        entries.append((f"{base}:{obj.get('key', '?')}",
                                        obj))
        else:
            data = load_result(path)
            for sec in data["deterministic"].get("sections", []):
                for cell in sec.get("cells", []):
                    metrics = cell.get("metrics")
                    if not isinstance(metrics, dict):
                        continue
                    for key in sorted(metrics):
                        if _is_hist_dict(metrics[key]):
                            cl = _cell_label(cell)
                            label = data["name"] + \
                                (f":{cl}" if cl else "") + f":{key}"
                            entries.append((label, metrics[key]))
    return entries


def render_bar(buckets: List[Tuple[int, int]], width: int) -> str:
    """ASCII density strip over the occupied bucket-index range. Pure
    function of the bucket data, so output is deterministic."""
    if not buckets:
        return ""
    lo = min(i for i, _ in buckets)
    hi = max(i for i, _ in buckets)
    span = max(1, hi - lo + 1)
    slots = [0] * width
    for idx, n in buckets:
        slots[min(width - 1, (idx - lo) * width // span)] += n
    peak = max(slots)
    out = []
    for s in slots:
        if s == 0:
            out.append(_BAR_LEVELS[0])
        else:
            lvl = 1 + (s * (len(_BAR_LEVELS) - 2)) // peak
            out.append(_BAR_LEVELS[min(lvl, len(_BAR_LEVELS) - 1)])
    return "".join(out)


def cmd_hist(args: argparse.Namespace) -> int:
    try:
        entries = collect_hists(args.paths)
    except (ValueError, OSError, json.JSONDecodeError) as e:
        print(f"bench_report hist: {e}", file=sys.stderr)
        return 2
    if args.key:
        entries = [(lbl, h) for lbl, h in entries if args.key in lbl]
    if not entries:
        print("bench_report hist: no histograms found"
              + (f" matching '{args.key}'" if args.key else ""),
              file=sys.stderr)
        return 2
    rows = []
    for label, h in entries:
        count = h["count"]
        mean = str(h["sum"] // count) if count else "-"
        stat = (lambda k: str(h[k]) if count else "-")
        rows.append((label, str(count), stat("min"), stat("p50"),
                     stat("p90"), stat("p99"), stat("max"), mean,
                     render_bar(_hist_buckets(h), args.width)))
    headers = ("histogram", "count", "min", "p50", "p90", "p99", "max",
               "mean", "distribution")
    if args.markdown:
        print("| " + " | ".join(headers) + " |")
        print("|" + "|".join("---" for _ in headers) + "|")
        for r in rows:
            cells = list(r)
            cells[-1] = f"`{cells[-1]}`" if cells[-1] else ""
            print("| " + " | ".join(cells) + " |")
    else:
        widths = [max(len(h), *(len(r[i]) for r in rows))
                  for i, h in enumerate(headers)]
        line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
        print(line)
        print("-" * len(line))
        for r in rows:
            print("  ".join(r[i].ljust(widths[i])
                            for i in range(len(headers))))
    return 0


# -------------------------------------------------------------------- main


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="bench_report", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="cmd", required=True)

    s = sub.add_parser("summary", help="table over a directory of results")
    s.add_argument("dir")
    s.set_defaults(fn=cmd_summary)

    d = sub.add_parser("det",
                       help="print canonical deterministic section (for cmp)")
    d.add_argument("file")
    d.set_defaults(fn=cmd_det)

    f = sub.add_parser("diff", help="compare two result directories")
    f.add_argument("a", help="reference run")
    f.add_argument("b", help="candidate run")
    f.add_argument("--threshold", type=float, default=25.0,
                   help="profile regression threshold in percent")
    f.set_defaults(fn=cmd_diff)

    c = sub.add_parser("check",
                       help="CI gate against committed baselines")
    c.add_argument("dir", help="freshly produced results")
    c.add_argument("--baselines", required=True,
                   help="directory of committed BENCH_*.json baselines")
    c.add_argument("--profile-threshold", type=float, default=0.0,
                   help="also gate profile rates at this percent "
                        "(0 = deterministic-only, the default)")
    c.set_defaults(fn=cmd_check)

    pf = sub.add_parser(
        "perf-floor",
        help="CI gate: deterministic work/allocation counters against "
             "committed floors (bench/perf_floors.json)")
    pf.add_argument("dir", help="freshly produced results")
    pf.add_argument("--floors", required=True,
                    help="JSON floor spec (see bench/perf_floors.json)")
    pf.set_defaults(fn=cmd_perf_floor)

    h = sub.add_parser(
        "hist",
        help="render metric distributions (BENCH_*.json per-cell "
             "histograms and run:hist trace records)")
    h.add_argument("paths", nargs="+",
                   help="BENCH_*.json files/dirs and/or trace *.jsonl")
    h.add_argument("--key", default="",
                   help="only histograms whose label contains this "
                        "substring")
    h.add_argument("--markdown", action="store_true",
                   help="emit a markdown table (for EXPERIMENTS.md)")
    h.add_argument("--width", type=int, default=24,
                   help="distribution strip width in characters")
    h.set_defaults(fn=cmd_hist)
    return p


def main(argv: List[str]) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
