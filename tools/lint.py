#!/usr/bin/env python3
"""Determinism lint for the longlook source tree.

The testbed's whole methodology (paired same-seed QUIC/TCP rounds, Welch's
t-test, state-machine inference) assumes bit-for-bit repeatable runs. This
lint bans the hazards that silently break that property:

  wall-clock            any real-time source; virtual time comes from
                        Simulator::now() only.
  raw-rand              rand()/random()/std::random_device/std::mt19937;
                        all randomness must flow through util/Rng, seeded
                        from the scenario.
  unordered-iteration   ranged-for over a std::unordered_* container:
                        iteration order is implementation-defined, so any
                        trace/report output fed from it is nondeterministic.
  unordered-in-report   any std::unordered_* use inside the output-producing
                        layers (harness, trace, stats, smi), where ordering
                        always ends up user-visible.
  uninitialized-pod     POD member/variable declarations with no
                        initializer; reads before first write are UB and
                        run-to-run dependent.
  direct-io             printf/puts/fwrite/std::cout in the transport and
                        link layers (src/{quic,tcp,cc,net}): those layers
                        must report through the obs:: trace/metrics sinks,
                        never by writing to stdio — ad-hoc prints corrupt
                        bench stdout (which is diffed byte-for-byte) and
                        bypass the structured artifacts.

False positives go in tools/lint_allowlist.txt as
    <rule> <path-substring> [<line-content-substring>]
one entry per line; '#' starts a comment.

Usage: lint.py <dir-or-file>...   (exit 0 clean, 1 findings, 2 bad usage)
"""

import re
import sys
from pathlib import Path

# Path fragments whose files produce ordered, user-visible output (reports,
# traces, inferred state machines): unordered containers are banned outright
# there, not just their iteration.
ORDER_SENSITIVE_PATHS = ("harness/", "net/trace", "stats/", "smi/")

# Layers that must emit through obs:: sinks instead of writing to stdio.
SINK_ENFORCED_PATHS = ("quic/", "tcp/", "cc/", "net/")

DIRECT_IO = re.compile(
    r"\bf?printf\s*\(|\bfputs\s*\(|\bfputc\s*\(|\bputs\s*\("
    r"|\bfwrite\s*\(|std::c(?:out|err|log)\b"
)

POD_TYPES = (
    r"(?:bool|char|short|int|long|float|double|unsigned(?:\s+(?:char|short|int|long))?"
    r"|std::size_t|std::ptrdiff_t|std::u?int(?:8|16|32|64)_t"
    r"|Duration|TimePoint|PacketNumber|EventId|StreamId|Port|Address)"
)

LINE_RULES = [
    (
        "wall-clock",
        re.compile(
            r"\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b"
            r"|\bgettimeofday\b|\bclock_gettime\b|\bstd::time\b"
            r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)|\blocaltime\b|\bgmtime\b"
        ),
        "wall-clock time source (virtual time comes from Simulator::now())",
    ),
    (
        "raw-rand",
        re.compile(
            r"\b(?:std::)?srand\s*\(|\b(?:std::)?rand\s*\(\s*\)"
            r"|\bdrand48\b|\brandom\s*\(\s*\)|\bstd::random_device\b"
            r"|\bstd::mt19937|\bstd::default_random_engine\b"
        ),
        "nondeterministic RNG (use util/Rng seeded from the scenario)",
    ),
    (
        "unordered-iteration",
        re.compile(r"for\s*\([^;)]*:[^)]*unordered"),
        "iterating an unordered container (order is implementation-defined)",
    ),
    (
        # std::map/set ordered by a raw pointer key: iteration follows
        # allocation addresses, which vary run to run (ASLR, allocator
        # state), so anything folded out of it is nondeterministic even
        # though the container itself is "ordered".
        "pointer-keyed-map",
        re.compile(r"std::(?:multi)?(?:map|set)\s*<\s*[^<>,]*\*\s*[,>]"),
        "pointer-keyed ordered container (iterates in allocation order, "
        "which differs run to run)",
    ),
]

POD_DECL = re.compile(
    r"^\s*(?:static\s+)?(?:mutable\s+)?" + POD_TYPES +
    r"\s+\w+(?:\s*\[\w*\])?\s*;\s*$"
)


def load_allowlist(repo_root: Path):
    entries = []
    path = repo_root / "tools" / "lint_allowlist.txt"
    if not path.exists():
        return entries
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        rule = parts[0]
        path_sub = parts[1] if len(parts) > 1 else ""
        content_sub = parts[2] if len(parts) > 2 else ""
        entries.append((rule, path_sub, content_sub))
    return entries


def allowed(entries, rule, path, line):
    for e_rule, e_path, e_content in entries:
        if e_rule != rule:
            continue
        if e_path and e_path not in path:
            continue
        if e_content and e_content not in line:
            continue
        return True
    return False


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments, preserving line structure."""
    out = []
    i = 0
    n = len(text)
    in_block = False
    while i < n:
        c = text[i]
        if in_block:
            if text.startswith("*/", i):
                in_block = False
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
            continue
        if text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith("/*", i):
            in_block = True
            i += 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(path: Path, rel: str, entries, findings):
    text = strip_comments(path.read_text())
    order_sensitive = any(frag in rel for frag in ORDER_SENSITIVE_PATHS)
    sink_enforced = any(frag in rel for frag in SINK_ENFORCED_PATHS)
    for lineno, line in enumerate(text.splitlines(), start=1):
        for rule, pattern, message in LINE_RULES:
            if pattern.search(line) and not allowed(entries, rule, rel, line):
                findings.append((rel, lineno, rule, message, line.strip()))
        if sink_enforced and DIRECT_IO.search(line):
            rule = "direct-io"
            if not allowed(entries, rule, rel, line):
                findings.append((
                    rel, lineno, rule,
                    "direct stdio in a sink-enforced layer "
                    "(emit obs:: trace events / metrics instead)",
                    line.strip(),
                ))
        if order_sensitive and "std::unordered_" in line:
            rule = "unordered-in-report"
            if not allowed(entries, rule, rel, line):
                findings.append((
                    rel, lineno, rule,
                    "unordered container in an output-producing layer",
                    line.strip(),
                ))
        if POD_DECL.match(line):
            rule = "uninitialized-pod"
            if not allowed(entries, rule, rel, line):
                findings.append((
                    rel, lineno, rule,
                    "POD declaration without an initializer",
                    line.strip(),
                ))


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    repo_root = Path(__file__).resolve().parent.parent
    files = []
    for arg in argv[1:]:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.h")) + sorted(p.rglob("*.cc")))
        elif p.is_file():
            files.append(p)
        else:
            print(f"lint.py: no such path: {arg}", file=sys.stderr)
            return 2
    entries = load_allowlist(repo_root)
    findings = []
    for f in sorted(set(files)):
        try:
            rel = str(f.resolve().relative_to(repo_root))
        except ValueError:
            rel = str(f)
        lint_file(f, rel, entries, findings)
    for rel, lineno, rule, message, line in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}: {line}")
    if findings:
        print(f"lint.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
