#!/usr/bin/env python3
"""Determinism lint for the longlook source tree (compatibility shim).

The original line-regex implementation has been replaced by the token-aware
analyzer in tools/analysis/ — this shim runs that analyzer restricted to the
original determinism rule set, preserving the CLI, the output format, the
exit codes, and the tools/lint_allowlist.txt mechanism so existing ctest
names (`lint`, `lint-selftest`) and CI steps keep working unchanged.

Rules (see docs/static_analysis.md for the full catalog including the
newer semantic rules):

  wall-clock            any real-time source; virtual time comes from
                        Simulator::now() only.
  raw-rand              rand()/random()/std::random_device/std::mt19937;
                        all randomness must flow through util/Rng, seeded
                        from the scenario.
  unordered-iteration   ranged-for over a std::unordered_* container.
  unordered-in-report   any std::unordered_* use inside the output-producing
                        layers (harness, trace, stats, smi).
  pointer-keyed-map     std::map/std::set keyed by a raw pointer (iterates
                        in allocation order, which differs run to run).
  uninitialized-pod     POD member/variable declarations with no
                        initializer.
  direct-io             printf/puts/fwrite/std::cout in the transport and
                        link layers (src/{quic,tcp,cc,net}).

False positives go in tools/lint_allowlist.txt as
    <rule> <path-substring> [<line-content-substring>]
one entry per line; '#' starts a comment. Inline
`// ll-analysis: allow(<rule>) <reason>` suppressions also work.

Usage: lint.py <dir-or-file>...   (exit 0 clean, 1 findings, 2 bad usage)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analysis import main as _analysis_main  # noqa: E402

_ALLOWLIST = Path(__file__).resolve().parent / "lint_allowlist.txt"


def main(argv) -> int:
    paths = [a for a in argv[1:] if not a.startswith("-")]
    if not paths:
        print("usage: lint.py <dir-or-file>...", file=sys.stderr)
        return 2
    args = [argv[0], "--legacy-only",
            "--allowlist", str(_ALLOWLIST)] + paths
    return _analysis_main(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
