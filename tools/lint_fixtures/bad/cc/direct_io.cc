// Lint fixture: direct stdio in a sink-enforced layer (path contains
// "cc/"). Every line below must trip the direct-io rule; the comment
// mentioning printf() must not.
#include <cstdio>
#include <iostream>

void leak_debug_output(int cwnd) {
  std::printf("cwnd=%d\n", cwnd);          // direct-io
  std::cout << "cwnd=" << cwnd << "\n";    // direct-io
  std::fputs("entering recovery\n", stderr);  // direct-io
}
