// Lint self-test fixture: one deliberate violation of EVERY lint rule.
// Never compiled, never linted by CI's real lint run (which covers src/);
// tools/lint_selftest.py asserts lint.py flags each line below. The
// "harness/" path component is load-bearing: it puts this file in an
// order-sensitive layer so unordered-in-report fires.
#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <set>
#include <unordered_map>
#include <unordered_set>

struct Packet;

void every_rule() {
  auto t = std::chrono::steady_clock::now();          // wall-clock
  int noise = std::rand();                            // raw-rand
  std::mt19937 gen(42);                               // raw-rand
  std::unordered_map<int, int> counts;                // unordered-in-report
  for (const auto& kv : counts_unordered) {           // unordered-iteration
  }
  std::map<Packet*, int> by_packet;                   // pointer-keyed-map
  std::set<const Packet*> seen;                       // pointer-keyed-map
  (void)t;
  (void)noise;
  (void)gen;
}

struct BadPod {
  int uninitialized_member;                           // uninitialized-pod
  double also_uninitialized;                          // uninitialized-pod
};
