// Lint self-test fixture: idiomatic longlook code that must produce ZERO
// findings. Includes near-misses that a sloppy rule would flag:
//  * violations inside comments (the linter strips comments first);
//  * ordered containers with pointer VALUES (only pointer KEYS iterate in
//    allocation order);
//  * initialized POD members.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

// std::rand() and steady_clock::now() in a comment must not fire.
/* Nor std::unordered_map<int, int> in a block comment. */

struct Timer;

struct CleanPod {
  int initialized_member = 0;
  double also_initialized = 1.5;
  std::uint64_t counter = 0;
};

void clean() {
  // Pointer values are fine; the hazard is pointer keys.
  std::map<std::uint64_t, Timer*> timers_by_id;
  std::map<std::string, int> by_name;
  std::vector<int> ints(4, 0);
  for (const auto& [id, t] : timers_by_id) {
    (void)id;
    (void)t;
  }
  (void)by_name;
}
