#!/usr/bin/env python3
"""Self-test for tools/lint.py, run as a ctest (`lint-selftest`).

Guards the linter itself against regressions: every rule must still fire on
tools/lint_fixtures/bad/ (which violates each rule at least once), and the
idiomatic code in tools/lint_fixtures/clean/ — including rule look-alikes in
comments and pointer-VALUED maps — must stay finding-free. A lint rule that
silently stops matching would otherwise fail open: the tree would drift
nondeterministic with CI green.

Usage: lint_selftest.py   (exit 0 pass, 1 fail)
"""

import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint  # noqa: E402

TOOLS = Path(__file__).resolve().parent
BAD = TOOLS / "lint_fixtures" / "bad"
CLEAN = TOOLS / "lint_fixtures" / "clean"

# rule -> minimum number of findings the bad fixture must produce.
EXPECTED_BAD = {
    "wall-clock": 1,
    "raw-rand": 2,
    "unordered-iteration": 1,
    "unordered-in-report": 1,  # fixture path contains "harness/"
    "pointer-keyed-map": 2,
    "uninitialized-pod": 2,
    "direct-io": 3,  # fixture path contains "cc/"
}


def run_lint(target: Path):
    out = io.StringIO()
    with redirect_stdout(out):
        code = lint.main(["lint.py", str(target)])
    return code, out.getvalue()


def main() -> int:
    failures = []

    code, output = run_lint(BAD)
    if code != 1:
        failures.append(f"bad fixtures: expected exit 1, got {code}")
    counts = {rule: 0 for rule in EXPECTED_BAD}
    for line in output.splitlines():
        for rule in counts:
            if f"[{rule}]" in line:
                counts[rule] += 1
    for rule, minimum in EXPECTED_BAD.items():
        if counts[rule] < minimum:
            failures.append(
                f"bad fixtures: rule '{rule}' fired {counts[rule]} time(s), "
                f"expected >= {minimum}"
            )
    total_expected = sum(EXPECTED_BAD.values())
    total_found = sum(counts.values())
    if total_found != total_expected:
        failures.append(
            f"bad fixtures: {total_found} findings across known rules, "
            f"expected exactly {total_expected} (a rule drifted looser "
            "or tighter — update the fixture AND this count together)"
        )

    code, output = run_lint(CLEAN)
    if code != 0:
        failures.append(
            "clean fixtures: expected exit 0, got "
            f"{code}; findings:\n{output}"
        )

    if failures:
        print("lint_selftest: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print(f"\nbad-fixture lint output:\n{run_lint(BAD)[1]}",
              file=sys.stderr)
        return 1
    print(f"lint_selftest: OK ({total_found} expected findings on bad "
          "fixtures, clean fixtures spotless)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
