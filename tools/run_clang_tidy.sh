#!/usr/bin/env sh
# Runs clang-tidy (profile: .clang-tidy) over the C++ sources using the
# compile_commands.json that every CMake configure now exports
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON unconditionally).
#
#   tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args...]
#
# Exits 0 and prints a notice when clang-tidy is not installed, so the CI
# leg and local hooks degrade gracefully instead of failing on toolchain
# availability (the gcc-only container has no clang-tidy). Exit codes:
# 0 clean or skipped, 1 findings, 2 setup error.
set -u

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR="${1:-$ROOT/build}"
case "$BUILD_DIR" in --) BUILD_DIR="$ROOT/build" ;; esac

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_clang_tidy: '$TIDY' not found; skipping (install clang-tidy" \
         "or set CLANG_TIDY to enable this check)" >&2
    exit 0
fi

DB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$DB" ]; then
    echo "run_clang_tidy: $DB not found; configure first:" >&2
    echo "  cmake -B $BUILD_DIR -S $ROOT" >&2
    exit 2
fi

# Everything the analyzer also covers: src, bench, tests, examples.
# tools/ has no C++. Findings go to stdout; exit 1 if any.
FILES=$(find "$ROOT/src" "$ROOT/bench" "$ROOT/tests" "$ROOT/examples" \
             -name '*.cc' 2>/dev/null | sort)
if [ -z "$FILES" ]; then
    echo "run_clang_tidy: no sources found under $ROOT" >&2
    exit 2
fi

STATUS=0
for f in $FILES; do
    "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
exit $STATUS
