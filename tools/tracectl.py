#!/usr/bin/env python3
"""tracectl — analysis CLI for longlook structured trace artifacts.

Subcommands over the JSON-lines artifacts described in docs/trace_schema.md
(schema v1–v3):

  validate   strict schema check; robust to malformed/truncated lines
             (run artifacts and flight-recorder dump artifacts alike)
  summarize  per-connection timeline: handshake, retransmits, cwnd, stalls
  detect     seeded anomaly rules: spurious-loss storms, retransmit storms,
             handshake stalls, cwnd collapse, ACK-delay outliers,
             queue buildup (bufferbloat) over v3 `ts:` samples
  timeline   per-flow time series from v3 `ts:` records: ASCII table /
             CSV plus Jain's fairness index per interval and overall
  diff       compare two trace dirs (or files) event-class by event-class

Exit codes: 0 clean, 1 findings / validation errors, 2 usage or I/O error.
The reader never crashes on malformed input: every problem is reported as
`file:line: message`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

SCHEMA_VERSIONS = (1, 2, 3)

# Required fields per event name (beyond the t/ev envelope). Values are
# checked for presence only; types are enforced by the flat-scalar rule.
REQUIRED_FIELDS = {
    "run:start": ["proto", "scenario", "seed", "objects", "object_bytes"],
    "run:hist": ["key", "count", "sum", "min", "max", "p50", "p90", "p99",
                 "buckets"],
    "quic:packet_sent": ["side", "pn", "bytes", "rtxable"],
    "quic:packet_received": ["side", "pn", "frames", "dup"],
    "quic:handshake": ["side", "msg"],
    "quic:established": ["side", "rtts"],
    "quic:ack_processed": ["side", "largest", "acked", "lost", "spurious"],
    "quic:packet_lost": ["side", "pn", "bytes"],
    "quic:spurious_loss": ["side", "pn", "bytes"],
    "quic:tlp": ["side", "n"],
    "quic:rto": ["side", "n"],
    "quic:stream_opened": ["side", "sid"],
    "quic:stream_fin": ["side", "sid", "bytes"],
    "quic:close": ["side"],
    "tcp:established": ["side", "rtts"],
    "tcp:segment_sent": ["side", "off", "len", "rtx"],
    "tcp:segment_received": ["side", "seq", "len", "ack"],
    "tcp:fast_retransmit": ["side", "off"],
    "tcp:dsack": ["side", "thresh"],
    "tcp:tlp": ["side", "n"],
    "tcp:rto": ["side", "n"],
    "cc:state": ["side", "from", "to"],
    "cc:cwnd": ["side", "cwnd"],
    "cc:bbr_state": ["side", "from", "to"],
    "net:drop_queue": ["dir", "bytes", "proto"],
    "net:drop_random": ["dir", "bytes", "proto"],
    "net:reorder": ["dir", "seq", "depth"],
    "ts:conn": ["proto", "side", "flow", "cwnd", "ssthresh", "srtt_ns",
                "rttvar_ns", "inflight", "pacing_bps", "delivered"],
    "ts:queue": ["dir", "depth", "drops_queue", "drops_random", "delivered"],
    "ts:host": ["host", "tx_pkts", "tx_bytes", "rx_pkts"],
    "ts:flow": ["flow", "cwnd", "srtt_ns", "inflight", "delivered"],
    "flight:dump": ["v", "label", "reason", "events", "dropped"],
    "flight:event": ["seq", "line"],
    "flight:end": ["events"],
}

# v2-only record types (run:start carries "v": 2 when these may appear).
V2_ONLY_EVENTS = {"run:hist"}

# v3-only record families: the periodic state samples and flight-recorder
# dump blocks (run:start carries "v": 3 when these may appear).
V3_ONLY_EVENTS = {"ts:conn", "ts:queue", "ts:host", "ts:flow",
                  "flight:dump", "flight:event", "flight:end"}


@dataclass
class TraceError:
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


@dataclass
class Trace:
    """One parsed artifact: good events plus every problem encountered."""

    path: str
    events: List[Tuple[int, dict]] = field(default_factory=list)  # (line, obj)
    errors: List[TraceError] = field(default_factory=list)
    version: int = 1

    def err(self, line: int, message: str) -> None:
        self.errors.append(TraceError(self.path, line, message))


def parse_trace(path: str) -> Trace:
    """Parse a JSON-lines artifact, accumulating errors instead of raising.

    Malformed or truncated lines become TraceError entries; well-formed
    events are kept so summarize/detect still work on partially-damaged
    files.
    """
    trace = Trace(path=path)
    try:
        with open(path, "rb") as f:
            raw = f.read()
    except OSError as e:
        trace.err(0, f"cannot read: {e}")
        return trace
    text = raw.decode("utf-8", errors="replace")
    lines = text.split("\n")
    # A well-formed artifact ends with a newline → last split element empty.
    if lines and lines[-1] == "":
        lines.pop()
    elif lines:
        trace.err(len(lines), "truncated: last line has no trailing newline")
    for i, line in enumerate(lines, start=1):
        if line == "":
            trace.err(i, "blank line")
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            trace.err(i, f"malformed JSON: {e.msg} (col {e.colno})")
            continue
        if not isinstance(obj, dict):
            trace.err(i, f"expected a JSON object, got {type(obj).__name__}")
            continue
        trace.events.append((i, obj))
    for line_no, obj in trace.events:
        # Flight-recorder dump artifacts carry the version on their
        # flight:dump header instead of run:start.
        if obj.get("ev") in ("run:start", "flight:dump"):
            v = obj.get("v", 1)
            if isinstance(v, int):
                trace.version = v
            break
    return trace


def is_flight_artifact(trace: Trace) -> bool:
    return bool(trace.events) and trace.events[0][1].get("ev") == "flight:dump"


def validate_trace(trace: Trace) -> None:
    """Append schema-conformance errors to an already-parsed trace."""
    flight = is_flight_artifact(trace)
    last_t: Optional[int] = None
    for idx, (line_no, obj) in enumerate(trace.events):
        t = obj.get("t")
        ev = obj.get("ev")
        if not isinstance(t, int) or isinstance(t, bool) or t < 0:
            trace.err(line_no, f"'t' must be a non-negative integer, got {t!r}")
            continue
        if not isinstance(ev, str) or ":" not in ev:
            trace.err(line_no,
                      f"'ev' must be a '<layer>:<event>' string, got {ev!r}")
            continue
        if last_t is not None and t < last_t:
            trace.err(line_no,
                      f"time went backwards: t={t} after t={last_t}")
        last_t = t
        for key, value in obj.items():
            if isinstance(value, float):
                trace.err(line_no, f"field '{key}' is a float ({value}); "
                          "the schema allows only int/bool/string")
            elif not isinstance(value, (int, bool, str)):
                trace.err(line_no, f"field '{key}' has non-scalar type "
                          f"{type(value).__name__}")
        if idx == 0 and ev != "run:start" and not flight:
            trace.err(line_no, f"first event must be run:start, got {ev}")
        if flight:
            expected = ("flight:dump" if idx == 0 else
                        "flight:end" if idx == len(trace.events) - 1 else
                        "flight:event")
            if ev != expected:
                trace.err(line_no, f"flight artifact: event {idx} must be "
                          f"{expected}, got {ev}")
            if ev == "flight:event" and isinstance(obj.get("line"), str):
                try:
                    inner = json.loads(obj["line"])
                    if (not isinstance(inner, dict)
                            or not isinstance(inner.get("t"), int)
                            or not isinstance(inner.get("ev"), str)):
                        raise ValueError("not a t/ev trace line")
                except (json.JSONDecodeError, ValueError) as e:
                    trace.err(line_no,
                              f"flight:event embedded line unparseable: {e}")
        required = REQUIRED_FIELDS.get(ev)
        if required is not None:
            missing = [k for k in required if k not in obj]
            if missing:
                trace.err(line_no,
                          f"{ev} missing field(s): {', '.join(missing)}")
        if ev == "run:start":
            v = obj.get("v", 1)
            if v not in SCHEMA_VERSIONS:
                trace.err(line_no, f"unknown schema version {v!r} "
                          f"(known: {SCHEMA_VERSIONS})")
        if ev in V2_ONLY_EVENTS and trace.version < 2:
            trace.err(line_no, f"{ev} requires schema v2, artifact is "
                      f"v{trace.version}")
        if ev in V3_ONLY_EVENTS and trace.version < 3:
            trace.err(line_no, f"{ev} requires schema v3, artifact is "
                      f"v{trace.version}")
        if ev == "run:hist" and isinstance(obj.get("buckets"), str):
            try:
                buckets = json.loads(obj["buckets"])
                ok = isinstance(buckets, list) and all(
                    isinstance(b, list) and len(b) == 2 and
                    all(isinstance(x, int) for x in b) for b in buckets)
                if not ok:
                    raise ValueError("not a [[index,count],...] array")
            except (json.JSONDecodeError, ValueError) as e:
                trace.err(line_no, f"run:hist buckets unparseable: {e}")
    if flight:
        last_ev = trace.events[-1][1].get("ev")
        if last_ev != "flight:end":
            trace.err(trace.events[-1][0],
                      f"last event must be flight:end, got {last_ev} "
                      "(truncated dump?)")
    elif trace.events:
        last_ev = trace.events[-1][1].get("ev")
        if last_ev != "run:metrics":
            trace.err(trace.events[-1][0],
                      f"last event must be run:metrics, got {last_ev} "
                      "(truncated artifact?)")
    elif not trace.errors:
        trace.err(0, "empty artifact")


def trace_files(paths: List[str]) -> List[str]:
    """Expand dir arguments to their *.jsonl members, keep file args as-is."""
    out: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            names = sorted(n for n in os.listdir(p) if n.endswith(".jsonl"))
            out.extend(os.path.join(p, n) for n in names)
        else:
            out.append(p)
    return out


# ---------------------------------------------------------------- validate


def cmd_validate(args: argparse.Namespace) -> int:
    files = trace_files(args.paths)
    if not files:
        print("tracectl validate: no .jsonl artifacts found", file=sys.stderr)
        return 2
    total_errors = 0
    for path in files:
        trace = parse_trace(path)
        validate_trace(trace)
        for e in trace.errors:
            print(e)
        total_errors += len(trace.errors)
    n = len(files)
    if total_errors:
        print(f"tracectl validate: {total_errors} error(s) in {n} file(s)")
        return 1
    if not args.quiet:
        print(f"tracectl validate: {n} file(s) OK")
    return 0


# --------------------------------------------------------------- summarize


@dataclass
class Summary:
    path: str
    proto: str = "?"
    scenario: str = "?"
    seed: object = "?"
    plt_ns: Optional[int] = None
    timed_out: bool = False
    handshake_rtts: Optional[int] = None
    established_t: Optional[int] = None
    packets_sent: int = 0
    packets_lost: int = 0
    spurious: int = 0
    fast_retransmits: int = 0
    rtx_segments: int = 0
    tlp: int = 0
    rto: int = 0
    cwnd_samples: int = 0
    cwnd_first: Optional[int] = None
    cwnd_max: int = 0
    cwnd_last: Optional[int] = None
    streams_opened: int = 0
    streams_finished: int = 0
    hol_stalls: int = 0
    drops: int = 0
    reorders: int = 0


def summarize_trace(trace: Trace) -> Summary:
    s = Summary(path=trace.path)
    for _, obj in trace.events:
        ev = obj.get("ev")
        side = obj.get("side")
        if ev == "run:start":
            s.proto = obj.get("proto", "?")
            s.scenario = obj.get("scenario", "?")
            s.seed = obj.get("seed", "?")
        elif ev == "run:summary":
            if isinstance(obj.get("plt_ns"), int):
                s.plt_ns = obj["plt_ns"]
            s.timed_out = bool(obj.get("timed_out", False))
        elif ev in ("quic:established", "tcp:established"):
            if side == "client" and s.handshake_rtts is None:
                s.handshake_rtts = obj.get("rtts")
                s.established_t = obj.get("t")
        elif ev == "quic:packet_sent":
            s.packets_sent += 1
        elif ev == "tcp:segment_sent":
            s.packets_sent += 1
            if obj.get("rtx"):
                s.rtx_segments += 1
        elif ev == "quic:packet_lost":
            s.packets_lost += 1
        elif ev == "quic:spurious_loss":
            s.spurious += 1
        elif ev == "tcp:fast_retransmit":
            s.fast_retransmits += 1
        elif ev in ("quic:tlp", "tcp:tlp"):
            s.tlp += 1
        elif ev in ("quic:rto", "tcp:rto"):
            s.rto += 1
        elif ev == "cc:cwnd":
            cwnd = obj.get("cwnd")
            if isinstance(cwnd, int):
                s.cwnd_samples += 1
                if s.cwnd_first is None:
                    s.cwnd_first = cwnd
                s.cwnd_max = max(s.cwnd_max, cwnd)
                s.cwnd_last = cwnd
        elif ev == "quic:stream_opened":
            s.streams_opened += 1
        elif ev == "quic:stream_fin":
            s.streams_finished += 1
        elif ev in ("net:drop_queue", "net:drop_random"):
            s.drops += 1
        elif ev == "net:reorder":
            s.reorders += 1
    # Head-of-line stalls: every recovery episode halts delivery to the app.
    # For TCP a single loss stalls the whole connection (fast retransmit or
    # RTO); for QUIC only an RTO stalls every stream at once.
    if s.proto == "tcp":
        s.hol_stalls = s.fast_retransmits + s.rto
    else:
        s.hol_stalls = s.rto
    return s


def print_summary(s: Summary) -> None:
    plt = "timed out" if s.timed_out else (
        f"{s.plt_ns / 1e9:.3f}s" if s.plt_ns is not None else "n/a")
    hs = ("not established" if s.handshake_rtts is None else
          f"{s.handshake_rtts} RTT ({(s.established_t or 0) / 1e6:.1f}ms)")
    print(f"{s.path}")
    print(f"  proto={s.proto} scenario={s.scenario} seed={s.seed} plt={plt}")
    print(f"  handshake: {hs}")
    print(f"  packets: sent={s.packets_sent} lost={s.packets_lost} "
          f"spurious={s.spurious} rtx_segments={s.rtx_segments} "
          f"fast_rtx={s.fast_retransmits} tlp={s.tlp} rto={s.rto}")
    cwnd = ("no samples" if s.cwnd_first is None else
            f"first={s.cwnd_first} max={s.cwnd_max} last={s.cwnd_last} "
            f"({s.cwnd_samples} updates)")
    print(f"  cwnd: {cwnd}")
    print(f"  streams: opened={s.streams_opened} fin={s.streams_finished} "
          f"hol_stalls={s.hol_stalls}")
    print(f"  link: drops={s.drops} reorders={s.reorders}")


def cmd_summarize(args: argparse.Namespace) -> int:
    files = trace_files(args.paths)
    if not files:
        print("tracectl summarize: no artifacts found", file=sys.stderr)
        return 2
    rc = 0
    for path in files:
        trace = parse_trace(path)
        for e in trace.errors:
            print(f"warning: {e}", file=sys.stderr)
            rc = 1
        print_summary(summarize_trace(trace))
    return rc


# ------------------------------------------------------------------ detect


@dataclass
class Finding:
    path: str
    rule: str
    detail: str

    def __str__(self) -> str:
        return f"{self.path}: [{self.rule}] {self.detail}"


def detect_trace(trace: Trace, args: argparse.Namespace) -> List[Finding]:
    findings: List[Finding] = []
    s = summarize_trace(trace)

    # Rule 1: spurious-loss storm — N spurious declarations inside a sliding
    # window of sim time. Spurious losses mean the loss detector is firing on
    # reordering, the pathology behind the paper's Fig. 10.
    window_ns = int(args.storm_window_s * 1e9)
    spurious_ts = [obj["t"] for _, obj in trace.events
                   if obj.get("ev") == "quic:spurious_loss"
                   and isinstance(obj.get("t"), int)]
    lo = 0
    worst = 0
    for hi in range(len(spurious_ts)):
        while spurious_ts[hi] - spurious_ts[lo] > window_ns:
            lo += 1
        worst = max(worst, hi - lo + 1)
    if worst >= args.storm_count:
        findings.append(Finding(
            trace.path, "spurious-loss-storm",
            f"{worst} spurious losses within {args.storm_window_s:g}s "
            f"(threshold {args.storm_count}); total spurious={len(spurious_ts)}"))

    # Rule 1b: retransmit storm — sustained retransmission pressure (lost
    # QUIC packets plus rtx-flagged TCP segments) inside a sliding window
    # of sim time, with too few spurious-loss recoveries to blame
    # reordering. Spurious-heavy bursts belong to the rule above; this one
    # flags genuine sustained loss (collapsing link or runaway RTO).
    rtx_window_ns = int(args.rtx_storm_window_s * 1e9)
    rtx_ts = sorted(obj["t"] for _, obj in trace.events
                    if isinstance(obj.get("t"), int)
                    and (obj.get("ev") == "quic:packet_lost"
                         or (obj.get("ev") == "tcp:segment_sent"
                             and obj.get("rtx"))))
    lo = 0
    worst_rtx = 0
    for hi in range(len(rtx_ts)):
        while rtx_ts[hi] - rtx_ts[lo] > rtx_window_ns:
            lo += 1
        worst_rtx = max(worst_rtx, hi - lo + 1)
    if worst_rtx >= args.rtx_storm_count and \
            len(spurious_ts) < args.rtx_spurious_ratio * worst_rtx:
        findings.append(Finding(
            trace.path, "retransmit-storm",
            f"{worst_rtx} retransmits within {args.rtx_storm_window_s:g}s "
            f"(threshold {args.rtx_storm_count}) with only "
            f"{len(spurious_ts)} spurious-loss recoveries "
            f"(< {args.rtx_spurious_ratio:g}x) — sustained genuine loss, "
            f"not reordering"))

    # Rule 2: handshake stall — establishment took too long, or never
    # happened on a run that timed out.
    stall_ns = int(args.handshake_stall_s * 1e9)
    if s.established_t is not None and s.established_t > stall_ns:
        findings.append(Finding(
            trace.path, "handshake-stall",
            f"established after {s.established_t / 1e9:.3f}s "
            f"(threshold {args.handshake_stall_s:g}s)"))
    elif s.handshake_rtts is None and s.timed_out:
        findings.append(Finding(
            trace.path, "handshake-stall",
            "run timed out without ever establishing"))

    # Rule 3: cwnd collapse — the window fell to a small fraction of its
    # peak and never recovered (final sample still collapsed).
    if s.cwnd_max > 0 and s.cwnd_last is not None:
        floor = max(int(s.cwnd_max * args.collapse_fraction),
                    args.collapse_min_bytes)
        if s.cwnd_max >= 4 * args.collapse_min_bytes and s.cwnd_last < floor:
            findings.append(Finding(
                trace.path, "cwnd-collapse",
                f"final cwnd {s.cwnd_last} < {args.collapse_fraction:g} x "
                f"peak {s.cwnd_max}"))

    # Rule 4: ACK-delay outliers — RTT samples from ACK processing far above
    # the median suggest delayed/starved ACK scheduling.
    rtts = [obj["rtt_ns"] for _, obj in trace.events
            if obj.get("ev") == "quic:ack_processed"
            and isinstance(obj.get("rtt_ns"), int)]
    if len(rtts) >= 8:
        med = sorted(rtts)[len(rtts) // 2]
        if med > 0:
            outliers = [r for r in rtts if r > med * args.ack_outlier_factor]
            if outliers:
                findings.append(Finding(
                    trace.path, "ack-delay-outlier",
                    f"{len(outliers)}/{len(rtts)} RTT samples above "
                    f"{args.ack_outlier_factor:g}x median "
                    f"({med / 1e6:.1f}ms); worst {max(outliers) / 1e6:.1f}ms"))

    # Rule 5: queue buildup (bufferbloat) — a router queue sits at or above
    # a depth threshold for a sustained stretch of sim time while smoothed
    # RTT rides above bloat_srtt_factor x the connection's smallest observed
    # srtt. Needs v3 `ts:` samples; artifacts without them never fire.
    sustain_ns = int(args.queue_sustain_s * 1e9)
    queues: Dict[str, List[Tuple[int, int]]] = {}
    for _, obj in trace.events:
        if (obj.get("ev") == "ts:queue" and isinstance(obj.get("t"), int)
                and isinstance(obj.get("depth"), int)):
            queues.setdefault(str(obj.get("dir", "?")), []).append(
                (obj["t"], obj["depth"]))
    srtts = [(obj["t"], obj["srtt_ns"]) for _, obj in trace.events
             if obj.get("ev") in ("ts:conn", "ts:flow")
             and isinstance(obj.get("t"), int)
             and isinstance(obj.get("srtt_ns"), int) and obj["srtt_ns"] > 0]
    min_srtt = min((v for _, v in srtts), default=0)
    for direction, samples in sorted(queues.items()):
        best: Optional[Tuple[int, int]] = None  # (start, end) of longest run
        run_start: Optional[int] = None
        for t, depth in samples:
            if depth >= args.queue_depth_bytes:
                if run_start is None:
                    run_start = t
                if best is None or t - run_start > best[1] - best[0]:
                    best = (run_start, t)
            else:
                run_start = None
        if best is None or best[1] - best[0] < sustain_ns or min_srtt == 0:
            continue
        inflated = [v for t, v in srtts if best[0] <= t <= best[1]]
        if inflated and max(inflated) >= args.bloat_srtt_factor * min_srtt:
            findings.append(Finding(
                trace.path, "queue-buildup",
                f"{direction} queue >= {args.queue_depth_bytes}B for "
                f"{(best[1] - best[0]) / 1e9:.1f}s "
                f"(threshold {args.queue_sustain_s:g}s) with srtt inflated "
                f"to {max(inflated) / 1e6:.1f}ms "
                f">= {args.bloat_srtt_factor:g}x min {min_srtt / 1e6:.1f}ms "
                f"— standing queue (bufferbloat)"))
    return findings


def cmd_detect(args: argparse.Namespace) -> int:
    files = trace_files(args.paths)
    if not files:
        print("tracectl detect: no artifacts found", file=sys.stderr)
        return 2
    rc = 0
    all_findings: List[Finding] = []
    for path in files:
        trace = parse_trace(path)
        for e in trace.errors:
            print(f"warning: {e}", file=sys.stderr)
            rc = 2 if rc == 0 else rc
        all_findings.extend(detect_trace(trace, args))
    for f in all_findings:
        print(f)
    if all_findings:
        print(f"tracectl detect: {len(all_findings)} finding(s) "
              f"in {len(files)} file(s)")
        return 1
    return rc


# ---------------------------------------------------------------- timeline


def timeline_series(trace: Trace, value: str) -> Dict[str, List[Tuple[int, int]]]:
    """Extract named (t_ns, value) series from a v3 artifact.

    Series come from `ts:flow` records (named by the harness) when the
    artifact has any — `ts:conn` records (named "<proto>:<flow>:<side>")
    are only the fallback, since fairness artifacts carry both views of
    the same flow and double-counting would skew the Jain column. For
    value "queue" the series are `ts:queue` records named by direction.
    Values are the raw integers from the records; rate conversion happens
    at render time.
    """
    field = {"mbps": "delivered", "cwnd": "cwnd", "srtt_ms": "srtt_ns",
             "inflight": "inflight", "queue": "depth"}[value]
    flows: Dict[str, List[Tuple[int, int]]] = {}
    conns: Dict[str, List[Tuple[int, int]]] = {}
    for _, obj in trace.events:
        t = obj.get("t")
        if not isinstance(t, int):
            continue
        ev = obj.get("ev")
        if value == "queue":
            if ev == "ts:queue" and isinstance(obj.get(field), int):
                flows.setdefault(str(obj.get("dir", "?")), []).append(
                    (t, obj[field]))
            continue
        if ev == "ts:flow" and isinstance(obj.get(field), int):
            flows.setdefault(str(obj.get("flow", "?")), []).append(
                (t, obj[field]))
        elif ev == "ts:conn" and isinstance(obj.get(field), int):
            name = (f"{obj.get('proto', '?')}:{obj.get('flow', '?')}:"
                    f"{obj.get('side', '?')}")
            conns.setdefault(name, []).append((t, obj[field]))
    return flows if flows else conns


def jain(xs: List[float]) -> float:
    """Jain's fairness index (sum x)^2 / (n * sum x^2); 0 for no/zero input.

    Mirrors stats::jain_index in src/stats/stats.cc.
    """
    total = sum(xs)
    total_sq = sum(x * x for x in xs)
    if not xs or total_sq == 0:
        return 0.0
    return total * total / (len(xs) * total_sq)


def render_timeline(path: str, series: Dict[str, List[Tuple[int, int]]],
                    value: str, csv_out, chart_width: int) -> None:
    names = sorted(series)
    ticks = sorted({t for pts in series.values() for t, _ in pts})
    by_name = {n: dict(pts) for n, pts in series.items()}
    rate = value == "mbps"

    # Per-tick table values: for rates, the delta of the cumulative counter
    # over the preceding interval, scaled to Mbps; otherwise the raw sample
    # (srtt rendered in ms).
    rows: List[Tuple[float, List[Optional[float]]]] = []
    prev: Dict[str, int] = {n: 0 for n in names}
    prev_t = 0
    for t in ticks:
        out_row: List[Optional[float]] = []
        for n in names:
            raw = by_name[n].get(t)
            if raw is None:
                out_row.append(None)
                continue
            if rate:
                dt_s = (t - prev_t) / 1e9
                out_row.append((raw - prev[n]) * 8.0 / dt_s / 1e6
                               if dt_s > 0 else 0.0)
                prev[n] = raw
            elif value == "srtt_ms":
                out_row.append(raw / 1e6)
            else:
                out_row.append(float(raw))
        rows.append((t / 1e9, out_row))
        prev_t = t

    multi = rate and len(names) >= 2
    if csv_out is not None:
        cols = ["t_s"] + names + (["jain"] if multi else [])
        csv_out.write(",".join(cols) + "\n")
        for t_s, vals in rows:
            cells = [f"{t_s:g}"] + [
                "" if v is None else f"{v:.6g}" for v in vals]
            if multi:
                present = [v for v in vals if v is not None]
                cells.append(f"{jain(present):.6f}")
            csv_out.write(",".join(cells) + "\n")
        return

    unit = {"mbps": "Mbps", "cwnd": "bytes", "srtt_ms": "ms",
            "inflight": "bytes", "queue": "bytes"}[value]
    print(f"{path}: {value} ({unit}) over time")
    header = f"{'t(s)':>8}" + "".join(f"{n[:14]:>16}" for n in names)
    if multi:
        header += f"{'jain':>8}"
    print(header)
    peak = max((v for _, vals in rows for v in vals if v is not None),
               default=0.0)
    for t_s, vals in rows:
        line = f"{t_s:>8.1f}"
        for v in vals:
            line += f"{'':>16}" if v is None else f"{v:>16.2f}"
        if multi:
            present = [v for v in vals if v is not None]
            line += f"{jain(present):>8.3f}"
        print(line)
    # Compact per-series chart: one bar per sample, normalised to the peak.
    # Longer runs are downsampled to chart_width bars (max over each bucket,
    # so transient spikes stay visible).
    if chart_width > 0 and peak > 0:
        for n in names:
            col = names.index(n)
            vals = [vals[col] for _, vals in rows]
            if len(vals) > chart_width:
                buckets = []
                for b in range(chart_width):
                    lo = b * len(vals) // chart_width
                    hi = max(lo + 1, (b + 1) * len(vals) // chart_width)
                    present = [v for v in vals[lo:hi] if v is not None]
                    buckets.append(max(present) if present else None)
                vals = buckets
            bars = ["" if v is None else
                    "▁▂▃▄▅▆▇█"[min(7, int(v / peak * 7.999))] for v in vals]
            bars = [b if b else " " for b in bars]
            print(f"  {n[:14]:<14} |{''.join(bars)}|")
    # Overall allocation: final cumulative value over the full span (rates),
    # Jain over those per-series averages.
    if rate and ticks:
        span_s = ticks[-1] / 1e9
        overall = []
        summary = []
        for n in names:
            final = max(by_name[n].values(), default=0)
            avg = final * 8.0 / span_s / 1e6 if span_s > 0 else 0.0
            overall.append(avg)
            summary.append(f"{n}={avg:.2f}")
        line = "overall Mbps: " + "  ".join(summary)
        if multi:
            line += f"  jain={jain(overall):.4f}"
        print(line)


def cmd_timeline(args: argparse.Namespace) -> int:
    files = trace_files(args.paths)
    if not files:
        print("tracectl timeline: no artifacts found", file=sys.stderr)
        return 2
    rc = 0
    for path in files:
        trace = parse_trace(path)
        for e in trace.errors:
            print(f"warning: {e}", file=sys.stderr)
        series = timeline_series(trace, args.value)
        if not series:
            print(f"{path}: no ts: samples for value '{args.value}' "
                  "(v3 artifact with sampling enabled?)", file=sys.stderr)
            rc = 1
            continue
        if args.csv is not None:
            if args.csv == "-":
                render_timeline(path, series, args.value, sys.stdout,
                                args.chart_width)
            else:
                with open(args.csv, "w", encoding="utf-8") as f:
                    render_timeline(path, series, args.value, f,
                                    args.chart_width)
        else:
            render_timeline(path, series, args.value, None, args.chart_width)
    return rc


# -------------------------------------------------------------------- diff


def event_counts(trace: Trace) -> Counter:
    return Counter(obj.get("ev", "?") for _, obj in trace.events)


def cmd_diff(args: argparse.Namespace) -> int:
    a_files = trace_files([args.a])
    b_files = trace_files([args.b])
    a_by_name = {os.path.basename(p): p for p in a_files}
    b_by_name = {os.path.basename(p): p for p in b_files}
    if os.path.isfile(args.a) and os.path.isfile(args.b):
        # Two explicit files: diff them against each other regardless of name.
        pairs = [(os.path.basename(args.a), args.a, args.b)]
        only_a: List[str] = []
        only_b: List[str] = []
    else:
        common = sorted(set(a_by_name) & set(b_by_name))
        pairs = [(n, a_by_name[n], b_by_name[n]) for n in common]
        only_a = sorted(set(a_by_name) - set(b_by_name))
        only_b = sorted(set(b_by_name) - set(a_by_name))
    for name in only_a:
        print(f"only in {args.a}: {name}")
    for name in only_b:
        print(f"only in {args.b}: {name}")
    differing = 0
    for name, pa, pb in pairs:
        ta, tb = parse_trace(pa), parse_trace(pb)
        for e in ta.errors + tb.errors:
            print(f"warning: {e}", file=sys.stderr)
        ca, cb = event_counts(ta), event_counts(tb)
        sa, sb = summarize_trace(ta), summarize_trace(tb)
        lines: List[str] = []
        for ev in sorted(set(ca) | set(cb)):
            if ca[ev] != cb[ev]:
                lines.append(f"    {ev:<24} {ca[ev]:>8} -> {cb[ev]:>8}")
        plt_a = sa.plt_ns if sa.plt_ns is not None else -1
        plt_b = sb.plt_ns if sb.plt_ns is not None else -1
        if plt_a != plt_b:
            lines.append(f"    {'plt_ns':<24} {plt_a:>8} -> {plt_b:>8}")
        if lines:
            differing += 1
            print(f"{name}:")
            for line in lines:
                print(line)
    if differing or only_a or only_b:
        print(f"tracectl diff: {differing} differing, {len(only_a)} only in A, "
              f"{len(only_b)} only in B")
        return 1
    print(f"tracectl diff: {len(pairs)} pair(s) identical at event level")
    return 0


# -------------------------------------------------------------------- main


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="tracectl", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="cmd", required=True)

    v = sub.add_parser("validate", help="strict schema check")
    v.add_argument("paths", nargs="+", help="trace dirs or .jsonl files")
    v.add_argument("--quiet", action="store_true",
                   help="print nothing when everything validates")
    v.set_defaults(fn=cmd_validate)

    s = sub.add_parser("summarize", help="per-connection timeline summary")
    s.add_argument("paths", nargs="+")
    s.set_defaults(fn=cmd_summarize)

    d = sub.add_parser("detect", help="run anomaly rules")
    d.add_argument("paths", nargs="+")
    d.add_argument("--storm-count", type=int, default=5,
                   help="spurious losses within the window to call a storm")
    d.add_argument("--storm-window-s", type=float, default=1.0)
    d.add_argument("--rtx-storm-count", type=int, default=8,
                   help="retransmits within the window to call a storm")
    d.add_argument("--rtx-storm-window-s", type=float, default=1.0)
    d.add_argument("--rtx-spurious-ratio", type=float, default=0.5,
                   help="spurious recoveries per windowed retransmit below "
                        "which the storm counts as genuine loss")
    d.add_argument("--handshake-stall-s", type=float, default=1.0)
    d.add_argument("--collapse-fraction", type=float, default=0.1,
                   help="final cwnd below this fraction of peak = collapse")
    d.add_argument("--collapse-min-bytes", type=int, default=15000)
    d.add_argument("--ack-outlier-factor", type=float, default=10.0)
    d.add_argument("--queue-depth-bytes", type=int, default=16384,
                   help="ts:queue depth that counts as standing backlog")
    d.add_argument("--queue-sustain-s", type=float, default=2.0,
                   help="backlog must persist this long to fire")
    d.add_argument("--bloat-srtt-factor", type=float, default=1.5,
                   help="srtt inflation vs min srtt during the backlog")
    d.set_defaults(fn=cmd_detect)

    t = sub.add_parser("timeline",
                       help="per-flow ASCII/CSV timelines from ts: samples")
    t.add_argument("paths", nargs="+")
    t.add_argument("--value", default="mbps",
                   choices=["mbps", "cwnd", "srtt_ms", "inflight", "queue"],
                   help="which sampled quantity to plot")
    t.add_argument("--csv", default=None, metavar="PATH",
                   help="write CSV instead of the ASCII table ('-' = stdout)")
    t.add_argument("--chart-width", type=int, default=60,
                   help="sparkline width; 0 disables the chart")
    t.set_defaults(fn=cmd_timeline)

    f = sub.add_parser("diff", help="compare two trace dirs or files")
    f.add_argument("a")
    f.add_argument("b")
    f.set_defaults(fn=cmd_diff)
    return p


def main(argv: List[str]) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
